//! Item indexing over the lexed token streams: every `fn` in the
//! workspace, with its enclosing `impl`/`trait` owner, body token range,
//! and return-type class, plus struct field types and `impl Trait for
//! Type` relations. This is the symbol table the call-graph layer
//! ([`crate::callgraph`]) resolves against.
//!
//! The indexer is purely syntactic (no name resolution, no macro
//! expansion): generic parameters are stripped down to the base type
//! ident (`impl<T: Cost> Forest<T>` owns its methods as `Forest`), trait
//! default methods are owned by the trait name, and nested `fn` items are
//! indexed in their own right (closures are not — their tokens belong to
//! the enclosing fn's body, which is exactly what the reachability passes
//! want for closures handed to `nn::par`).

use crate::lexer::{matching_close, split_args, TokKind, Token};
use crate::passes::{crate_of, Context};
use std::collections::{BTreeMap, BTreeSet};

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name (generics stripped), if any.
    pub owner: Option<String>,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Index of the file in [`Context::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body (exclusive of the braces); `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Token range of the parameter list (exclusive of the parens).
    pub params: Option<(usize, usize)>,
    /// `Result` appears in the declared return type.
    pub returns_result: bool,
    /// A `MutexGuard`/`RwLock*Guard` appears in the declared return type
    /// — calling this fn acquires a lock the caller then holds.
    pub returns_guard: bool,
    /// `f32`/`f64` appears in the declared return type — the floatflow
    /// engine treats this fn's summary as a float value.
    pub returns_float: bool,
    pub is_pub: bool,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnItem {
    /// `Owner::name` or bare `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// `crate::Owner::name` — the display form used in findings and DOT.
    pub fn display(&self) -> String {
        format!("{}::{}", self.crate_name, self.qualified())
    }
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct ItemIndex {
    pub fns: Vec<FnItem>,
    /// `(type, field) -> base field type` for receiver-type hints.
    pub fields: BTreeMap<(String, String), String>,
    /// `(type, trait)` pairs from `impl Trait for Type`.
    pub trait_impls: Vec<(String, String)>,
    /// Every type/trait name that owns items (impl targets, traits,
    /// structs).
    pub owners: BTreeSet<String>,
}

impl ItemIndex {
    /// Traits implemented by `ty`, in deterministic order.
    pub fn traits_of(&self, ty: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .trait_impls
            .iter()
            .filter(|(t, _)| t == ty)
            .map(|(_, tr)| tr.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Index every file in the context.
pub fn index(ctx: &Context) -> ItemIndex {
    let mut ix = ItemIndex::default();
    for (fi, file) in ctx.files.iter().enumerate() {
        index_file(fi, file, &mut ix);
    }
    ix
}

/// Advance past a `<...>` generic group starting at `j` (which must be
/// `<`). Angle depth only — `->`/`=>` are fused by the lexer, so their
/// `>` never miscounts. Bails (returning the bail position) on `{` / `;`
/// so malformed input cannot run away.
pub(crate) fn skip_generics(tokens: &[Token], mut j: usize) -> usize {
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parse a type path at `k` (`&'a mut crate::tensor::Matrix<f64>`),
/// returning the base type ident and the position after the path.
fn parse_type_path(tokens: &[Token], mut k: usize) -> Option<(String, usize)> {
    // Skip reference/lifetime/mutability/dyn prefixes.
    loop {
        match tokens.get(k)? {
            t if t.is_punct("&") => k += 1,
            t if t.is_punct("'") => k += 2, // `'a`
            t if t.is_ident("mut") || t.is_ident("dyn") => k += 1,
            _ => break,
        }
    }
    let mut name = match tokens.get(k) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return None,
    };
    k += 1;
    if tokens.get(k).is_some_and(|t| t.is_punct("<")) {
        k = skip_generics(tokens, k);
    }
    while tokens.get(k).is_some_and(|t| t.is_punct("::"))
        && tokens.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)
    {
        name = tokens[k + 1].text.clone();
        k += 2;
        if tokens.get(k).is_some_and(|t| t.is_punct("<")) {
            k = skip_generics(tokens, k);
        }
    }
    Some((name, k))
}

/// First `{` at paren/bracket depth 0 from `k`. Bails when the depth
/// goes negative: that means `k` sat inside an enclosing delimiter
/// (e.g. a param-position `impl FnMut(...)`) and the next brace at
/// "depth 0" would be an unrelated closure body, not this item's —
/// latching onto it used to silently skip every fn in between.
fn find_body_open(tokens: &[Token], mut k: usize) -> Option<usize> {
    let mut depth = 0i32;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            "{" if depth == 0 => return Some(k),
            ";" if depth == 0 => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Base type ident of the token range `[s, e)`, looking through
/// `Option`/`Box`/`Rc`/`Arc` wrappers (`Option<Dense>` hints `Dense`).
pub(crate) fn base_type(tokens: &[Token], s: usize, e: usize) -> Option<String> {
    let mut start = s;
    let (mut name, _) = parse_type_path_bounded(tokens, start, e)?;
    while matches!(name.as_str(), "Option" | "Box" | "Rc" | "Arc") {
        // Step inside the wrapper's `<...>` and re-parse from there, so
        // nested wrappers (`Option<Box<T>>`) terminate.
        let open = (start..e).find(|&i| tokens[i].is_punct("<"))?;
        start = open + 1;
        let (inner, _) = parse_type_path_bounded(tokens, start, e)?;
        name = inner;
    }
    Some(name)
}

fn parse_type_path_bounded(tokens: &[Token], s: usize, e: usize) -> Option<(String, usize)> {
    let (name, k) = parse_type_path(&tokens[..e.min(tokens.len())], s)?;
    Some((name, k))
}

struct Scope {
    owner: Option<String>,
    close: usize,
}

fn index_file(fi: usize, file: &crate::passes::AnalyzedFile, ix: &mut ItemIndex) {
    let toks = &file.tokens;
    let path = file.source.path.clone();
    let krate = crate_of(&path).to_string();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        while scopes.last().is_some_and(|s| j > s.close) {
            scopes.pop();
        }
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            j += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if let Some((owner, trait_name, open)) = parse_impl_header(toks, j) {
                    if let Some(close) = matching_close(toks, open) {
                        ix.owners.insert(owner.clone());
                        if let Some(tr) = trait_name {
                            ix.trait_impls.push((owner.clone(), tr));
                        }
                        scopes.push(Scope {
                            owner: Some(owner),
                            close,
                        });
                        j = open + 1;
                        continue;
                    }
                }
                j += 1;
            }
            "trait" => {
                let name = match toks.get(j + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        j += 1;
                        continue;
                    }
                };
                let Some(open) = find_body_open(toks, j + 2) else {
                    j += 2;
                    continue;
                };
                let Some(close) = matching_close(toks, open) else {
                    j += 2;
                    continue;
                };
                ix.owners.insert(name.clone());
                scopes.push(Scope {
                    owner: Some(name),
                    close,
                });
                j = open + 1;
            }
            "struct" => {
                j = index_struct(toks, j, ix);
            }
            "fn" => {
                let Some(parsed) = parse_fn(toks, j) else {
                    j += 1;
                    continue;
                };
                let owner = scopes.last().and_then(|s| s.owner.clone());
                ix.fns.push(FnItem {
                    name: parsed.name,
                    owner,
                    path: path.clone(),
                    crate_name: krate.clone(),
                    file: fi,
                    line: t.line,
                    body: parsed.body,
                    params: parsed.params,
                    returns_result: parsed.returns_result,
                    returns_guard: parsed.returns_guard,
                    returns_float: parsed.returns_float,
                    is_pub: is_pub_before(toks, j),
                    in_test: t.in_test,
                });
                // Keep scanning inside the body so nested fns are
                // indexed too.
                j += 2;
            }
            _ => j += 1,
        }
    }
}

/// `impl [<G>] Type {` or `impl [<G>] Trait for Type {` — returns
/// (owner type, implemented trait, index of the opening brace).
fn parse_impl_header(toks: &[Token], j: usize) -> Option<(String, Option<String>, usize)> {
    let mut k = j + 1;
    if toks.get(k)?.is_punct("<") {
        k = skip_generics(toks, k);
    }
    let (first, after) = parse_type_path(toks, k)?;
    k = after;
    if toks.get(k).is_some_and(|t| t.is_ident("for")) {
        let (second, after2) = parse_type_path(toks, k + 1)?;
        let open = find_body_open(toks, after2)?;
        return Some((second, Some(first), open));
    }
    let open = find_body_open(toks, k)?;
    Some((first, None, open))
}

/// Record `struct Name { field: Type, ... }` fields; returns the next
/// scan position.
fn index_struct(toks: &[Token], j: usize, ix: &mut ItemIndex) -> usize {
    let name = match toks.get(j + 1) {
        Some(n) if n.kind == TokKind::Ident => n.text.clone(),
        _ => return j + 1,
    };
    let mut k = j + 2;
    if toks.get(k).is_some_and(|t| t.is_punct("<")) {
        k = skip_generics(toks, k);
    }
    if toks.get(k).is_some_and(|t| t.is_ident("where")) {
        k = match find_body_open(toks, k) {
            Some(open) => open,
            None => return j + 1,
        };
    }
    match toks.get(k) {
        Some(t) if t.is_punct("{") => {}
        // Tuple / unit struct: nothing to record.
        _ => return j + 2,
    }
    let Some(close) = matching_close(toks, k) else {
        return j + 2;
    };
    ix.owners.insert(name.clone());
    for (fs, fe) in split_args(toks, k + 1, close) {
        // `[pub [(crate)]] field : Type`
        let Some(colon) = (fs..fe).find(|&i| toks[i].is_punct(":")) else {
            continue;
        };
        if colon == fs || toks[colon - 1].kind != TokKind::Ident {
            continue;
        }
        let fname = toks[colon - 1].text.clone();
        if let Some(base) = base_type(toks, colon + 1, fe) {
            ix.fields.insert((name.clone(), fname), base);
        }
    }
    close + 1
}

struct ParsedFn {
    name: String,
    body: Option<(usize, usize)>,
    params: Option<(usize, usize)>,
    returns_result: bool,
    returns_guard: bool,
    returns_float: bool,
}

/// Parse the `fn` signature at `j`; `None` when this is not a function
/// item (e.g. an `fn(usize) -> f64` pointer type).
fn parse_fn(toks: &[Token], j: usize) -> Option<ParsedFn> {
    let name_tok = toks.get(j + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let mut k = j + 2;
    if toks.get(k)?.is_punct("<") {
        k = skip_generics(toks, k);
    }
    if !toks.get(k)?.is_punct("(") {
        return None;
    }
    let params_close = matching_close(toks, k)?;
    let params = Some((k + 1, params_close));
    let mut m = params_close + 1;
    let mut depth = 0i32;
    let (mut arrow, mut in_where, mut returns_result, mut returns_guard) =
        (false, false, false, false);
    let mut returns_float = false;
    while m < toks.len() {
        let t = &toks[m];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "->" if depth == 0 && !in_where => arrow = true,
            "where" if depth == 0 => in_where = true,
            "Result" if arrow && !in_where => returns_result = true,
            "f32" | "f64" if arrow && !in_where => returns_float = true,
            "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard" if arrow && !in_where => {
                returns_guard = true
            }
            "{" if depth == 0 => {
                let close = matching_close(toks, m)?;
                return Some(ParsedFn {
                    name,
                    body: Some((m + 1, close)),
                    params,
                    returns_result,
                    returns_guard,
                    returns_float,
                });
            }
            ";" if depth == 0 => {
                return Some(ParsedFn {
                    name,
                    body: None,
                    params,
                    returns_result,
                    returns_guard,
                    returns_float,
                });
            }
            _ => {}
        }
        m += 1;
    }
    None
}

/// Is the `fn` at `j` preceded by a `pub` (through `const`/`unsafe`/
/// `async`/`pub(crate)` modifiers)?
fn is_pub_before(toks: &[Token], j: usize) -> bool {
    let mut k = j;
    while k > 0 {
        let p = &toks[k - 1];
        let skip = matches!(p.text.as_str(), "const" | "unsafe" | "async" | "crate")
            || p.is_punct("(")
            || p.is_punct(")");
        if skip {
            k -= 1;
        } else {
            return p.is_ident("pub");
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn ctx_of(files: &[(&str, &str)]) -> Context {
        Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        }
    }

    fn find<'a>(ix: &'a ItemIndex, owner: Option<&str>, name: &str) -> &'a FnItem {
        ix.fns
            .iter()
            .find(|f| f.owner.as_deref() == owner && f.name == name)
            .unwrap_or_else(|| panic!("missing {owner:?}::{name} in {:?}", ix.fns))
    }

    #[test]
    fn free_and_method_fns_are_indexed() {
        let ix = index(&ctx_of(&[(
            "crates/nn/src/x.rs",
            "pub fn free(a: usize) -> usize { a }\n\
             struct Foo { w: Matrix }\n\
             impl Foo {\n\
                 pub fn forward(&mut self, x: &Matrix) -> Matrix { self.w.clone() }\n\
                 fn private_helper(&self) {}\n\
             }\n",
        )]));
        let free = find(&ix, None, "free");
        assert!(free.is_pub && free.body.is_some() && !free.returns_result);
        let fwd = find(&ix, Some("Foo"), "forward");
        assert!(fwd.is_pub);
        assert_eq!(fwd.display(), "nn::Foo::forward");
        assert!(!find(&ix, Some("Foo"), "private_helper").is_pub);
        assert_eq!(
            ix.fields.get(&("Foo".into(), "w".into())).unwrap(),
            "Matrix"
        );
    }

    #[test]
    fn generic_impls_strip_to_the_base_type() {
        let ix = index(&ctx_of(&[(
            "crates/ml/src/x.rs",
            "impl<T: Cost + Clone> Forest<T> where T: Send {\n\
                 pub fn fit(&mut self, n: usize) -> Result<(), FitError> { Ok(()) }\n\
             }\n\
             impl<'a> ops::Index<usize> for Matrix {\n\
                 fn index(&self, i: usize) -> &f64 { self.get(i) }\n\
             }\n",
        )]));
        let fit = find(&ix, Some("Forest"), "fit");
        assert!(fit.returns_result);
        let idx = find(&ix, Some("Matrix"), "index");
        assert_eq!(idx.owner.as_deref(), Some("Matrix"));
        assert!(ix.trait_impls.contains(&("Matrix".into(), "Index".into())));
    }

    #[test]
    fn trait_default_methods_belong_to_the_trait() {
        let ix = index(&ctx_of(&[(
            "crates/ml/src/x.rs",
            "pub trait Classifier {\n\
                 fn predict_proba(&self, x: &[f64]) -> f64;\n\
                 fn predict(&self, x: &[f64]) -> bool {\n\
                     self.predict_proba(x) >= 0.5\n\
                 }\n\
             }\n",
        )]));
        let decl = find(&ix, Some("Classifier"), "predict_proba");
        assert!(decl.body.is_none(), "bodiless declaration");
        let default = find(&ix, Some("Classifier"), "predict");
        assert!(default.body.is_some(), "default method has a body");
    }

    #[test]
    fn fn_pointer_types_are_not_items_and_nested_fns_are() {
        let ix = index(&ctx_of(&[(
            "crates/core/src/x.rs",
            "pub fn outer(cb: fn(usize) -> f64) -> f64 {\n\
                 fn inner(v: usize) -> f64 { v as f64 }\n\
                 cb(1) + inner(2)\n\
             }\n",
        )]));
        assert_eq!(ix.fns.len(), 2, "{:?}", ix.fns);
        assert!(ix.fns.iter().any(|f| f.name == "outer"));
        assert!(ix.fns.iter().any(|f| f.name == "inner"));
    }

    #[test]
    fn option_wrapped_fields_hint_the_inner_type() {
        let ix = index(&ctx_of(&[(
            "crates/core/src/x.rs",
            "pub struct Model {\n\
                 pub head: Option<Dense>,\n\
                 scratch: Box<Matrix>,\n\
                 name: String,\n\
             }\n",
        )]));
        assert_eq!(
            ix.fields.get(&("Model".into(), "head".into())).unwrap(),
            "Dense"
        );
        assert_eq!(
            ix.fields.get(&("Model".into(), "scratch".into())).unwrap(),
            "Matrix"
        );
        assert_eq!(
            ix.fields.get(&("Model".into(), "name".into())).unwrap(),
            "String"
        );
    }

    #[test]
    fn test_region_items_are_marked() {
        let ix = index(&ctx_of(&[(
            "crates/nn/src/x.rs",
            "pub fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        )]));
        assert!(!find(&ix, None, "lib").in_test);
        assert!(find(&ix, None, "helper").in_test);
    }

    #[test]
    fn guard_returning_fns_are_marked() {
        let ix = index(&ctx_of(&[(
            "crates/serving/src/x.rs",
            "fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap() }\n\
             fn read<'a>(l: &'a RwLock<u8>) -> RwLockReadGuard<'a, u8> { l.read().unwrap() }\n\
             pub fn plain(n: usize) -> usize { n }\n",
        )]));
        assert!(find(&ix, None, "lock").returns_guard);
        assert!(find(&ix, None, "read").returns_guard);
        assert!(!find(&ix, None, "plain").returns_guard);
        let (p0, p1) = find(&ix, None, "plain").params.expect("params recorded");
        assert!(p1 > p0, "non-empty param range");
    }

    #[test]
    fn where_clause_result_does_not_mark_return() {
        let ix = index(&ctx_of(&[(
            "crates/nn/src/x.rs",
            "pub fn map<F>(f: F) -> f64 where F: Fn(usize) -> Result<f64, ()> { 0.0 }\n",
        )]));
        assert!(!find(&ix, None, "map").returns_result);
    }
}
