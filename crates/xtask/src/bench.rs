//! Benchmark report plumbing for `cargo run -p xtask -- bench-report`.
//!
//! Parses the line-oriented output of the vendored criterion stub
//! (`bench <name> mean <dur>  min <dur>  (<n> samples)`) and renders
//! `BENCH_kernels.json`: a committed before/after record of the compute
//! kernel hot paths. The first run seeds the `baseline` section; later
//! runs preserve it and refresh `current`, so the file always answers
//! "how much faster is the tree than the recorded baseline?".

/// One benchmark measurement, durations normalized to nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Criterion id, e.g. `nn/attention_fwd_bwd_60news`.
    pub name: String,
    /// Mean wall-clock time per sample, in ns.
    pub mean_ns: f64,
    /// Fastest sample, in ns.
    pub min_ns: f64,
    /// Number of timed samples behind the mean.
    pub samples: u64,
}

/// Parse a `std::time::Duration` Debug rendering (`543ns`, `44.293µs`,
/// `3.85ms`, `1.2s`) into nanoseconds. Returns `None` on anything else.
pub fn parse_duration_ns(s: &str) -> Option<f64> {
    let s = s.trim();
    // Longest suffixes first so `ms`/`ns`/`µs` are not mistaken for `s`.
    let (num, scale) = if let Some(p) = s.strip_suffix("ns") {
        (p, 1.0)
    } else if let Some(p) = s.strip_suffix("µs").or_else(|| s.strip_suffix("us")) {
        (p, 1e3)
    } else if let Some(p) = s.strip_suffix("ms") {
        (p, 1e6)
    } else if let Some(p) = s.strip_suffix('s') {
        (p, 1e9)
    } else {
        return None;
    };
    num.trim().parse::<f64>().ok().map(|v| v * scale)
}

/// Extract every `bench ...` line from a `cargo bench` run. Lines that
/// do not match the stub's report format are skipped, so compiler
/// chatter interleaved with the measurements is harmless.
pub fn parse_bench_lines(out: &str) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for line in out.lines() {
        let Some(rest) = line.strip_prefix("bench ") else {
            continue;
        };
        let Some(mean_pos) = rest.find(" mean ") else {
            continue;
        };
        let name = rest[..mean_pos].trim().to_string();
        let tail = &rest[mean_pos + " mean ".len()..];
        let Some(min_pos) = tail.find(" min ") else {
            continue;
        };
        let Some(mean_ns) = parse_duration_ns(&tail[..min_pos]) else {
            continue;
        };
        let after_min = &tail[min_pos + " min ".len()..];
        let Some(par) = after_min.find('(') else {
            continue;
        };
        let Some(min_ns) = parse_duration_ns(&after_min[..par]) else {
            continue;
        };
        let samples = after_min[par + 1..]
            .trim_end()
            .trim_end_matches(')')
            .trim_end_matches("samples")
            .trim()
            .parse()
            .unwrap_or(0);
        entries.push(BenchEntry {
            name,
            mean_ns,
            min_ns,
            samples,
        });
    }
    entries
}

/// Pull the `baseline` entries back out of a previously rendered
/// `BENCH_kernels.json`. Only understands the exact shape
/// [`render_json`] writes — which is all it ever needs to read.
pub fn parse_baseline_section(json: &str) -> Vec<BenchEntry> {
    parse_section(json, "baseline")
}

/// Pull any named entry section (`baseline` / `current`) out of a
/// previously rendered `BENCH_kernels.json`.
pub fn parse_section(json: &str, title: &str) -> Vec<BenchEntry> {
    let needle = format!("\"{title}\": {{");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in json[start..].lines().skip(1) {
        let line = line.trim();
        if line == "}" || line == "}," {
            break;
        }
        let Some(entry) = parse_entry_line(line) else {
            continue;
        };
        entries.push(entry);
    }
    entries
}

/// Compare a fresh run against committed numbers: every row whose fresh
/// mean exceeds the committed mean by more than `tolerance` (e.g. `0.15`
/// = 15%) is a regression. Rows present on only one side are skipped —
/// adding or retiring a benchmark is not a regression.
pub fn regressions(committed: &[BenchEntry], fresh: &[BenchEntry], tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for f in fresh {
        let Some(c) = committed.iter().find(|c| c.name == f.name) else {
            continue;
        };
        if c.mean_ns > 0.0 && f.mean_ns > c.mean_ns * (1.0 + tolerance) {
            out.push(format!(
                "{}: mean {:.3}µs vs committed {:.3}µs (+{:.1}%, tolerance {:.0}%)",
                f.name,
                f.mean_ns / 1e3,
                c.mean_ns / 1e3,
                (f.mean_ns / c.mean_ns - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    out
}

fn parse_entry_line(line: &str) -> Option<BenchEntry> {
    // `"name": { "mean_ns": 1.5, "min_ns": 1, "samples": 10 },`
    let rest = line.strip_prefix('"')?;
    let name_end = rest.find('"')?;
    let name = rest[..name_end].to_string();
    let mean_ns = field(rest, "\"mean_ns\": ")?;
    let min_ns = field(rest, "\"min_ns\": ")?;
    let samples = field(rest, "\"samples\": ")? as u64;
    Some(BenchEntry {
        name,
        mean_ns,
        min_ns,
        samples,
    })
}

fn field(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let tail = &line[at..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Render the committed report: recorded baseline, the fresh run, and a
/// per-benchmark speedup (baseline / current) where names overlap.
pub fn render_json(baseline: &[BenchEntry], current: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cargo bench -p bench --bench substrates --features simd\",\n");
    out.push_str("  \"unit\": \"nanoseconds\",\n");
    render_section(&mut out, "baseline", baseline);
    out.push_str(",\n");
    render_section(&mut out, "current", current);
    out.push_str(",\n  \"speedup_vs_baseline\": {\n");
    let mut pairs = Vec::new();
    for cur in current {
        if let Some(base) = baseline.iter().find(|b| b.name == cur.name) {
            if cur.mean_ns > 0.0 && cur.min_ns > 0.0 {
                pairs.push(format!(
                    "    \"{}\": {{ \"mean\": {:.2}, \"min\": {:.2} }}",
                    cur.name,
                    base.mean_ns / cur.mean_ns,
                    base.min_ns / cur.min_ns
                ));
            }
        }
    }
    out.push_str(&pairs.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn render_section(out: &mut String, title: &str, entries: &[BenchEntry]) {
    out.push_str(&format!("  \"{title}\": {{\n"));
    let lines: Vec<String> = entries
        .iter()
        .map(|e| {
            // Nanosecond readings are whole numbers; parsing can still
            // produce a fractional f64 (e.g. µs→ns conversion), so round
            // at the serialization boundary to keep the committed JSON in
            // integer ns.
            format!(
                "    \"{}\": {{ \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {} }}",
                e.name,
                e.mean_ns.round(),
                e.min_ns.round(),
                e.samples
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_normalize_to_ns() {
        assert_eq!(parse_duration_ns("543ns"), Some(543.0));
        assert_eq!(parse_duration_ns("44.293µs"), Some(44293.0));
        assert_eq!(parse_duration_ns("3.853832ms"), Some(3853832.0));
        assert_eq!(parse_duration_ns("1.5s"), Some(1.5e9));
        assert_eq!(parse_duration_ns("  829.689µs "), Some(829689.0));
        assert_eq!(parse_duration_ns("fast"), None);
        assert_eq!(parse_duration_ns(""), None);
    }

    #[test]
    fn bench_lines_parse_the_stub_report_format() {
        let out = "   Compiling bench v0.1.0\n\
                   bench nn/attention_fwd_bwd_60news                        \
                   mean    829.689µs  min    793.113µs  (10 samples)\n\
                   bench graph/bfs_shortest_path_cap4                       \
                   mean     44.293µs  min        543ns  (10 samples)\n\
                   random noise line\n";
        let entries = parse_bench_lines(out);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "nn/attention_fwd_bwd_60news");
        assert_eq!(entries[0].mean_ns, 829689.0);
        assert_eq!(entries[0].min_ns, 793113.0);
        assert_eq!(entries[0].samples, 10);
        assert_eq!(entries[1].min_ns, 543.0);
    }

    #[test]
    fn rendered_nanoseconds_are_integers() {
        // A µs→ns conversion can leave float residue (2035772.9999999998);
        // the committed JSON must carry whole nanoseconds.
        let entries = vec![BenchEntry {
            name: "nn/example".into(),
            mean_ns: 2_035_772.999_999_999_8,
            min_ns: 1_999_999.000_000_000_2,
            samples: 10,
        }];
        let mut out = String::new();
        render_section(&mut out, "current", &entries);
        assert!(out.contains("\"mean_ns\": 2035773,"), "{out}");
        assert!(out.contains("\"min_ns\": 1999999,"), "{out}");
    }

    #[test]
    fn baseline_survives_a_render_parse_round_trip() {
        let baseline = vec![BenchEntry {
            name: "nn/gru_bptt_6steps_batch64".into(),
            mean_ns: 24011705.0,
            min_ns: 23265429.0,
            samples: 10,
        }];
        let current = vec![BenchEntry {
            name: "nn/gru_bptt_6steps_batch64".into(),
            mean_ns: 10439263.0,
            min_ns: 10105327.0,
            samples: 10,
        }];
        let json = render_json(&baseline, &current);
        assert_eq!(parse_baseline_section(&json), baseline);
        // ~2.3× speedup shows up in the report.
        assert!(json.contains("\"mean\": 2.30"));
    }

    #[test]
    fn missing_baseline_section_parses_to_empty() {
        assert!(parse_baseline_section("{}").is_empty());
    }

    #[test]
    fn current_section_parses_independently_of_baseline() {
        let baseline = vec![BenchEntry {
            name: "nn/matmul".into(),
            mean_ns: 100.0,
            min_ns: 90.0,
            samples: 10,
        }];
        let current = vec![BenchEntry {
            name: "nn/matmul".into(),
            mean_ns: 50.0,
            min_ns: 45.0,
            samples: 10,
        }];
        let json = render_json(&baseline, &current);
        assert_eq!(parse_section(&json, "current"), current);
        assert_eq!(parse_section(&json, "baseline"), baseline);
        assert!(parse_section(&json, "nonexistent").is_empty());
    }

    #[test]
    fn regressions_flag_only_rows_beyond_tolerance() {
        let entry = |name: &str, mean: f64| BenchEntry {
            name: name.into(),
            mean_ns: mean,
            min_ns: mean,
            samples: 10,
        };
        let committed = vec![
            entry("a", 100.0),
            entry("b", 100.0),
            entry("retired", 100.0),
        ];
        let fresh = vec![entry("a", 114.0), entry("b", 116.0), entry("new", 9000.0)];
        let regs = regressions(&committed, &fresh, 0.15);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("b:"), "{regs:?}");
        assert!(regs[0].contains("+16.0%"));
    }
}
