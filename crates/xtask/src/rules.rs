//! The lint rules (R1–R5). Each rule is a pure function over a
//! preprocessed [`SourceFile`] so fixture snippets can drive the unit
//! tests directly.

use crate::source::SourceFile;

/// A hard violation (fails the lint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: "R1".."R4", or "allow" for malformed allow-comments.
    pub rule: &'static str,
    /// Allow-comment key that suppresses this violation.
    pub key: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// A non-failing inventory entry (R5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InventoryItem {
    /// Marker kind (todo / fixme / xxx / hack, upper-cased in source).
    pub kind: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Comment text.
    pub text: String,
}

/// Crates exempt from R1: the bench harness and the corpus-ingestion
/// crates whose parsers surface errors by panicking on malformed
/// fixtures. Every *other* workspace member — including the lint
/// tooling itself and any crate added after this list was written — has
/// panic-free non-test library code; exclusion-based so new members are
/// covered the day they appear in the manifest.
pub const R1_EXEMPT: [&str; 3] = ["bench", "socialsim", "text"];

/// Files under the R3 probability-hygiene rule.
pub const R3_FILES: [&str; 3] = [
    "crates/nn/src/loss.rs",
    "crates/nn/src/attention.rs",
    "crates/nn/src/gru.rs",
];

/// The tensor hot-kernel file under R4.
pub const R4_FILE: &str = "crates/nn/src/tensor.rs";

/// Tensor accessors allowed to index the backing buffer directly (they
/// carry the `debug_assert!` bounds guards).
const R4_ACCESSORS: [&str; 6] = ["get", "set", "row", "row_mut", "data", "data_mut"];

/// Does R1 apply to this path? (library code of every non-exempt
/// member crate; `tests/`, `benches/` and `examples/` trees are
/// excluded by the walker.)
pub fn r1_applies(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else {
        return false;
    };
    let Some((name, tail)) = rest.split_once('/') else {
        return false;
    };
    !R1_EXEMPT.contains(&name) && tail.starts_with("src/")
}

/// Collect malformed allow-comments for `key` as violations.
fn allow_misuses(file: &SourceFile, key: &'static str, out: &mut Vec<Violation>) {
    let (_, missing) = file.allows(key);
    for line in missing {
        out.push(Violation {
            rule: "allow",
            key,
            path: file.path.clone(),
            line,
            message: format!("`lint: allow({key})` needs a reason after the closing paren"),
        });
    }
}

/// R1: no `.unwrap()` / `.expect(` in non-test library code.
pub fn r1_no_unwrap(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if !r1_applies(&file.path) {
        return out;
    }
    let (allowed, _) = file.allows("unwrap");
    allow_misuses(file, "unwrap", &mut out);
    for (i, line) in file.lines.iter().enumerate() {
        let n = i + 1;
        if line.in_test || allowed.contains(&n) {
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            if line.code.contains(pat) {
                out.push(Violation {
                    rule: "R1",
                    key: "unwrap",
                    path: file.path.clone(),
                    line: n,
                    message: format!(
                        "`{pat}` in library code can panic at runtime; return a Result, \
                         handle the None/Err case, or annotate \
                         `// lint: allow(unwrap) <reason>`"
                    ),
                });
            }
        }
    }
    out
}

/// R2: no direct float `==` / `!=` outside tests (float-literal operand
/// heuristic: `x == 1.0`, `y != 0.5f64`, `z == f64::INFINITY`, ...).
pub fn r2_no_float_eq(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let (allowed, _) = file.allows("float-cmp");
    allow_misuses(file, "float-cmp", &mut out);
    for (i, line) in file.lines.iter().enumerate() {
        let n = i + 1;
        if line.in_test || allowed.contains(&n) {
            continue;
        }
        for (op_pos, op) in find_eq_ops(&line.code) {
            let lhs = token_before(&line.code, op_pos);
            let rhs = token_after(&line.code, op_pos + op.len());
            if is_float_token(&lhs) || is_float_token(&rhs) {
                out.push(Violation {
                    rule: "R2",
                    key: "float-cmp",
                    path: file.path.clone(),
                    line: n,
                    message: format!(
                        "direct float comparison `{lhs} {op} {rhs}`; compare with an \
                         epsilon tolerance or annotate `// lint: allow(float-cmp) <reason>`"
                    ),
                });
            }
        }
    }
    out
}

/// R3: `ln()`/`log*()` (and probability-denominator division) must carry
/// an epsilon guard on the same expression line.
pub fn r3_prob_guard(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if !R3_FILES.iter().any(|f| file.path.ends_with(f)) {
        return out;
    }
    let (allowed, _) = file.allows("prob-guard");
    allow_misuses(file, "prob-guard", &mut out);
    const GUARDS: [&str; 6] = ["EPS", "EPSILON", ".max(", "clamp", "1e-", "1.0 +"];
    const PROB_DENOMS: [&str; 5] = ["sum", "total", "denom", "norm", "prob"];
    for (i, line) in file.lines.iter().enumerate() {
        let n = i + 1;
        if line.in_test || allowed.contains(&n) {
            continue;
        }
        let guarded = GUARDS.iter().any(|g| line.code.contains(g));
        if guarded {
            continue;
        }
        for pat in [".ln()", ".log(", ".log2()", ".log10()"] {
            if line.code.contains(pat) {
                out.push(Violation {
                    rule: "R3",
                    key: "prob-guard",
                    path: file.path.clone(),
                    line: n,
                    message: format!(
                        "`{pat}` without an epsilon guard on the line; clamp the \
                         argument away from 0 (e.g. `.max(EPS)`) or annotate \
                         `// lint: allow(prob-guard) <reason>`"
                    ),
                });
            }
        }
        for d in PROB_DENOMS {
            for pat in [format!("/ {d}"), format!("/= {d}")] {
                if let Some(pos) = line.code.find(&pat) {
                    // Reject longer identifiers (`/ sums`, `/ total_n`).
                    let end = pos + pat.len();
                    let next = line.code[end..].chars().next();
                    if next.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                        out.push(Violation {
                            rule: "R3",
                            key: "prob-guard",
                            path: file.path.clone(),
                            line: n,
                            message: format!(
                                "division by probability mass `{pat}` without an epsilon \
                                 guard; use `.max(EPS)` on the denominator or annotate \
                                 `// lint: allow(prob-guard) <reason>`"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// R4: in the tensor hot kernels, the backing buffer must be reached
/// through the `debug_assert!`-guarded accessors, not raw indexing.
pub fn r4_tensor_indexing(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if !file.path.ends_with(R4_FILE) {
        return out;
    }
    let (allowed, _) = file.allows("index");
    allow_misuses(file, "index", &mut out);
    let mut current_fn = String::new();
    for (i, line) in file.lines.iter().enumerate() {
        let n = i + 1;
        if let Some(name) = fn_name(&line.code) {
            current_fn = name;
        }
        if line.in_test || allowed.contains(&n) {
            continue;
        }
        if R4_ACCESSORS.contains(&current_fn.as_str()) {
            continue;
        }
        if has_raw_data_index(&line.code) {
            out.push(Violation {
                rule: "R4",
                key: "index",
                path: file.path.clone(),
                line: n,
                message: format!(
                    "raw `data[..]` indexing in `{current_fn}`; use the \
                     debug_assert!-guarded accessors (get/set/row/row_mut) or annotate \
                     `// lint: allow(index) <reason>`"
                ),
            });
        }
    }
    out
}

/// R5: open-marker inventory over all comments (tests included).
pub fn r5_todo_inventory(file: &SourceFile) -> Vec<InventoryItem> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        for kind in ["TODO", "FIXME", "XXX", "HACK"] {
            if let Some(pos) = line.comment.find(kind) {
                // Require a word boundary before the marker (a marker
                // embedded in an identifier-like word should not count).
                let boundary = pos == 0
                    || !line.comment[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric());
                if boundary {
                    out.push(InventoryItem {
                        kind: kind.to_string(),
                        path: file.path.clone(),
                        line: i + 1,
                        text: line.comment[pos..].trim().to_string(),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// Run every rule on one file.
pub fn lint_file(file: &SourceFile) -> (Vec<Violation>, Vec<InventoryItem>) {
    let mut v = Vec::new();
    v.extend(r1_no_unwrap(file));
    v.extend(r2_no_float_eq(file));
    v.extend(r3_prob_guard(file));
    v.extend(r4_tensor_indexing(file));
    (v, r5_todo_inventory(file))
}

/// Positions of bare `==` / `!=` operators (excluding `<=`, `>=`, `=>`).
fn find_eq_ops(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let pair = (bytes[i], bytes[i + 1]);
        if pair == (b'=', b'=') || pair == (b'!', b'=') {
            let prev = i.checked_sub(1).map(|p| bytes[p]);
            let next = bytes.get(i + 2);
            let standalone = !matches!(prev, Some(b'<') | Some(b'>') | Some(b'=') | Some(b'!'))
                && next != Some(&b'=');
            if standalone {
                out.push((i, if pair.0 == b'=' { "==" } else { "!=" }));
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// The expression token immediately left of byte `pos`.
fn token_before(code: &str, pos: usize) -> String {
    let left = code[..pos].trim_end();
    let start = left
        .rfind(|c: char| {
            !(c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | ')' | ']' | '-' | '+'))
        })
        .map_or(0, |p| p + 1);
    left[start..].to_string()
}

/// The expression token immediately right of byte `pos`.
fn token_after(code: &str, pos: usize) -> String {
    let right = code[pos..].trim_start();
    let stripped = right.strip_prefix('-').unwrap_or(right);
    let end = stripped
        .find(|c: char| !(c.is_alphanumeric() || matches!(c, '_' | '.' | ':')))
        .unwrap_or(stripped.len());
    let sign = if stripped.len() != right.len() {
        "-"
    } else {
        ""
    };
    format!("{sign}{}", &stripped[..end])
}

/// Is this token a float literal / well-known float constant?
fn is_float_token(token: &str) -> bool {
    let t = token.trim_start_matches('-');
    if matches!(
        t,
        "f64::INFINITY"
            | "f64::NEG_INFINITY"
            | "f64::NAN"
            | "f32::INFINITY"
            | "f32::NEG_INFINITY"
            | "f32::NAN"
            | "f64::EPSILON"
            | "f32::EPSILON"
    ) {
        return true;
    }
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(t);
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        // Suffixed literal like `5f64` already handled; `x.0` tuple access
        // and idents are not floats for this heuristic.
        return t.len() != token.trim_start_matches('-').len()
            && t.chars().all(|c| c.is_ascii_digit());
    }
    // Digits with a decimal point (`1.`, `0.5`, `1.0e-3`) or exponent.
    let has_dot = t.contains('.');
    let has_exp = t.contains('e') || t.contains('E');
    let valid = t
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '-' | '+'));
    valid && (has_dot || has_exp || t.len() != token.trim_start_matches('-').len())
}

/// `fn name` extraction for R4 scope tracking.
fn fn_name(code: &str) -> Option<String> {
    let pos = code.find("fn ")?;
    // Require a word boundary before `fn`.
    if pos > 0
        && code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    let rest = code[pos + 3..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| rest[..end].to_string())
}

/// Raw indexing of a `data` buffer: `data[`, `self.data[`, `out.data[`.
fn has_raw_data_index(code: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = code[search..].find("data[") {
        let abs = search + pos;
        let prev = code[..abs].chars().next_back();
        // Word boundary: `.data[`, start-of-expr `data[`; not `metadata[`.
        if prev.is_none_or(|c| !(c.is_alphanumeric() || c == '_')) {
            return true;
        }
        search = abs + 5;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn nn_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/nn/src/example.rs", src)
    }

    // -------- R1 --------

    #[test]
    fn r1_flags_unwrap_and_expect() {
        let f = nn_file("pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g(r: Result<u8, ()>) -> u8 { r.expect(\"boom\") }\n");
        let v = r1_no_unwrap(&f);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 4);
        assert!(v.iter().all(|x| x.rule == "R1"));
    }

    #[test]
    fn r1_skips_tests_comments_and_strings() {
        let f = nn_file(
            "// a comment mentioning .unwrap()\n\
             const S: &str = \".unwrap()\";\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { Some(1).unwrap(); }\n\
             }\n",
        );
        assert!(r1_no_unwrap(&f).is_empty());
    }

    #[test]
    fn r1_respects_allow_with_reason() {
        let f = nn_file(
            "fn f(x: Option<u8>) -> u8 {\n\
                 // lint: allow(unwrap) invariant: caller checked is_some\n\
                 x.unwrap()\n\
             }\n",
        );
        assert!(r1_no_unwrap(&f).is_empty());
    }

    #[test]
    fn r1_rejects_allow_without_reason() {
        let f = nn_file("fn f(x: Option<u8>) -> u8 { x.unwrap() // lint: allow(unwrap)\n}\n");
        let v = r1_no_unwrap(&f);
        // The malformed allow is itself a violation, and it does NOT
        // suppress the unwrap it points at.
        let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"allow"), "{v:?}");
        assert!(rules.contains(&"R1"), "{v:?}");
    }

    #[test]
    fn r1_ignores_out_of_scope_crates() {
        let f = SourceFile::parse("crates/socialsim/src/x.rs", "fn f() { o().unwrap(); }\n");
        assert!(r1_no_unwrap(&f).is_empty());
    }

    #[test]
    fn r1_scope_is_exclusion_based() {
        // Pin the exemption list and the default-in behavior: a member
        // crate added after the list was written is covered without
        // touching R1_EXEMPT.
        assert_eq!(R1_EXEMPT, ["bench", "socialsim", "text"]);
        assert!(r1_applies("crates/brandnew/src/lib.rs"));
        assert!(r1_applies("crates/serving/src/server.rs"));
        assert!(
            r1_applies("crates/xtask/src/rules.rs"),
            "the linter lints itself"
        );
        assert!(!r1_applies("crates/text/src/tokenize.rs"));
        assert!(!r1_applies("crates/nn/tests/gru.rs"), "non-src tree");
        assert!(!r1_applies("src/lib.rs"), "root package");
    }

    // -------- R2 --------

    #[test]
    fn r2_flags_float_literal_comparison() {
        let f = nn_file("fn f(a: f64) -> bool { a == 0.0 }\n");
        let v = r2_no_float_eq(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R2");
    }

    #[test]
    fn r2_flags_ne_and_suffixed_literals() {
        let f =
            nn_file("fn f(a: f64) -> bool { 1.5f64 != a }\nfn g(b: f32) -> bool { b == 2e-3 }\n");
        assert_eq!(r2_no_float_eq(&f).len(), 2);
    }

    #[test]
    fn r2_skips_integer_comparisons_and_tests() {
        let f = nn_file(
            "fn f(a: usize) -> bool { a == 0 }\n\
             fn h(a: usize) -> bool { a != 10 }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { assert!(x == 1.0); }\n\
             }\n",
        );
        assert!(r2_no_float_eq(&f).is_empty());
    }

    #[test]
    fn r2_skips_compound_operators() {
        let f = nn_file("fn f(a: f64) -> bool { a <= 1.0 && a >= 0.0 }\nfn m() -> u8 { match 1 { _ => 2.0 as u8 } }\n");
        assert!(r2_no_float_eq(&f).is_empty());
    }

    #[test]
    fn r2_respects_allow() {
        let f =
            nn_file("fn f(a: f64) -> bool { a == 0.0 } // lint: allow(float-cmp) exact sentinel\n");
        assert!(r2_no_float_eq(&f).is_empty());
    }

    // -------- R3 --------

    fn loss_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/nn/src/loss.rs", src)
    }

    #[test]
    fn r3_flags_unguarded_ln() {
        let f = loss_file("fn f(p: f64) -> f64 { -p.ln() }\n");
        let v = r3_prob_guard(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R3");
    }

    #[test]
    fn r3_accepts_guarded_ln() {
        let f = loss_file(
            "fn f(p: f64) -> f64 { -(p.max(EPS)).ln() }\n\
             fn g(p: f64) -> f64 { -(p.clamp(1e-12, 1.0)).ln() }\n\
             fn softplus(x: f64) -> f64 { (1.0 + x.exp()).ln() }\n",
        );
        assert!(r3_prob_guard(&f).is_empty());
    }

    #[test]
    fn r3_flags_unguarded_probability_division() {
        let f = loss_file("fn f(v: &mut [f64], sum: f64) { for x in v { *x /= sum; } }\n");
        assert_eq!(r3_prob_guard(&f).len(), 1);
    }

    #[test]
    fn r3_skips_longer_identifiers_and_other_files() {
        let f = loss_file("fn f(a: f64, total_n: f64) -> f64 { a / total_n }\n");
        assert!(r3_prob_guard(&f).is_empty());
        let g = SourceFile::parse("crates/nn/src/dense.rs", "fn f(p: f64) -> f64 { p.ln() }\n");
        assert!(r3_prob_guard(&g).is_empty());
    }

    #[test]
    fn r3_respects_allow() {
        let f = loss_file(
            "// lint: allow(prob-guard) input is a count >= 1, not a probability\n\
             fn f(c: f64) -> f64 { c.ln() }\n",
        );
        assert!(r3_prob_guard(&f).is_empty());
    }

    // -------- R4 --------

    fn tensor_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/nn/src/tensor.rs", src)
    }

    #[test]
    fn r4_flags_raw_indexing_outside_accessors() {
        let f = tensor_file(
            "impl Matrix {\n\
                 pub fn matmul(&self, o: &Matrix) -> f64 {\n\
                     self.data[0] * o.data[1]\n\
                 }\n\
             }\n",
        );
        let v = r4_tensor_indexing(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R4");
    }

    #[test]
    fn r4_allows_the_guarded_accessors() {
        let f = tensor_file(
            "impl Matrix {\n\
                 pub fn get(&self, r: usize, c: usize) -> f64 {\n\
                     debug_assert!(r < self.rows);\n\
                     self.data[r * self.cols + c]\n\
                 }\n\
                 pub fn row(&self, r: usize) -> &[f64] {\n\
                     &self.data[r * self.cols..(r + 1) * self.cols]\n\
                 }\n\
             }\n",
        );
        assert!(r4_tensor_indexing(&f).is_empty());
    }

    #[test]
    fn r4_ignores_metadata_identifiers_and_other_files() {
        let f = tensor_file("fn f(metadata: &[u8]) -> u8 { metadata[0] }\n");
        assert!(r4_tensor_indexing(&f).is_empty());
        let g = SourceFile::parse(
            "crates/nn/src/dense.rs",
            "fn f(d: &[u8]) -> u8 { d.data[0] }\n",
        );
        assert!(r4_tensor_indexing(&g).is_empty());
    }

    #[test]
    fn r4_respects_allow() {
        let f = tensor_file(
            "fn fast_path(&self) -> f64 {\n\
                 // lint: allow(index) bounds proven by caller loop range\n\
                 self.data[0]\n\
             }\n",
        );
        assert!(r4_tensor_indexing(&f).is_empty());
    }

    // -------- R5 --------

    #[test]
    fn r5_collects_markers_with_positions() {
        let f = nn_file(
            "// TODO: vectorize this loop\n\
             fn f() {}\n\
             // a FIXME(perf): quadratic fallback\n\
             /* XXX edge case */\n",
        );
        let inv = r5_todo_inventory(&f);
        assert_eq!(inv.len(), 3);
        assert_eq!(inv[0].kind, "TODO");
        assert_eq!(inv[0].line, 1);
        assert_eq!(inv[1].kind, "FIXME");
        assert_eq!(inv[2].kind, "XXX");
    }

    #[test]
    fn r5_requires_word_boundary() {
        let f = nn_file("// MAXXX is not a marker\n");
        assert!(r5_todo_inventory(&f).is_empty());
    }

    // -------- engine --------

    #[test]
    fn lint_file_merges_all_rules() {
        let f = loss_file(
            "fn f(p: f64) -> f64 {\n\
                 // TODO: tighten\n\
                 if p == 0.0 { return 0.0; }\n\
                 p.ln()\n\
             }\n",
        );
        let (v, inv) = lint_file(&f);
        let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"R2"), "{rules:?}");
        assert!(rules.contains(&"R3"), "{rules:?}");
        assert_eq!(inv.len(), 1);
    }
}
