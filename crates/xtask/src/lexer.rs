//! A lightweight token stream over the code channel of a
//! [`SourceFile`](crate::source::SourceFile). The semantic passes (A1–A3)
//! pattern-match token sequences instead of raw lines, which survives
//! formatting differences (multi-line calls, aligned operators) that defeat
//! the per-line rules.
//!
//! The lexer is deliberately tiny: comments, strings and char literals are
//! already blanked by `strip_non_code`, so only idents, numbers and
//! punctuation remain. Multi-char operators that matter to the passes
//! (`::`, `..`, `..=`, `->`, `=>`) are fused into one token; everything
//! else is a single-byte punct.

use crate::source::SourceFile;

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `as`, `HashMap`, ...).
    Ident,
    /// Integer literal (`64`, `0xA77`, `1_000`).
    Int,
    /// Float literal (`1.0`, `2e-3`); also suffixed forms.
    Float,
    /// A (blanked) string literal — content is always `"…"`.
    Str,
    /// Punctuation / operator, possibly fused (`::`, `..`, `->`).
    Punct,
}

/// One token with its provenance.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Token text (owned; blanked strings come through as `"`).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// True when the token sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lex the code channel of a preprocessed file into a token stream.
pub fn lex(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            if b == b'"' {
                // strip_non_code keeps only the delimiting quotes.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                out.push(Token {
                    kind: TokKind::Str,
                    text: "\"\"".to_string(),
                    line: lineno,
                    in_test: line.in_test,
                });
                i = (j + 1).min(bytes.len());
                continue;
            }
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Ident,
                    text: line.code[start..i].to_string(),
                    line: lineno,
                    in_test: line.in_test,
                });
                continue;
            }
            if b.is_ascii_digit() {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        i += 1;
                    } else if c == b'.'
                        && bytes.get(i + 1).is_none_or(|n| n.is_ascii_digit())
                        && !is_float
                    {
                        // `1.0` / `1.` but not `1..n` (range) or `1.max(…)`.
                        if bytes.get(i + 1) == Some(&b'.') {
                            break;
                        }
                        is_float = true;
                        i += 1;
                    } else if (c == b'+' || c == b'-')
                        && matches!(bytes.get(i.wrapping_sub(1)), Some(&b'e') | Some(&b'E'))
                    {
                        // Exponent sign inside `1e-3`.
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &line.code[start..i];
                let kind = if is_float || text.contains('e') && !text.starts_with("0x") {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
                out.push(Token {
                    kind,
                    text: text.to_string(),
                    line: lineno,
                    in_test: line.in_test,
                });
                continue;
            }
            // Punctuation: fuse the multi-byte operators the passes need.
            let two = bytes.get(i + 1).map(|&n| (b, n));
            let three = bytes.get(i + 2).map(|&n| (b, bytes[i + 1], n));
            let fused: Option<&str> = match (two, three) {
                (_, Some((b'.', b'.', b'='))) => Some("..="),
                (Some((b':', b':')), _) => Some("::"),
                (Some((b'.', b'.')), _) => Some(".."),
                (Some((b'-', b'>')), _) => Some("->"),
                (Some((b'=', b'>')), _) => Some("=>"),
                _ => None,
            };
            let text = match fused {
                Some(s) => s,
                None => &line.code[i..i + 1],
            };
            out.push(Token {
                kind: TokKind::Punct,
                text: text.to_string(),
                line: lineno,
                in_test: line.in_test,
            });
            i += text.len();
        }
    }
    out
}

/// Find the index of the matching close delimiter for the open delimiter
/// at `open` (which must be `(`, `[` or `{`). Returns `None` when
/// unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open)?.text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Split the token range `tokens[start..end]` on top-level commas
/// (commas not nested inside any bracket pair). Returns the argument
/// sub-ranges.
pub fn split_args(tokens: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = start;
    for j in start..end {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((arg_start, j));
                arg_start = j + 1;
            }
            _ => {}
        }
    }
    if arg_start < end {
        out.push((arg_start, end));
    }
    out
}

/// Render a token range back to a compact source-like string (for
/// messages and DOT labels).
pub fn render(tokens: &[Token], start: usize, end: usize) -> String {
    let mut out = String::new();
    for (j, t) in tokens[start..end].iter().enumerate() {
        let glue = matches!(t.text.as_str(), "." | "::" | "(" | ")" | "[" | "]" | ",")
            || tokens[start + j.saturating_sub(1)]
                .text
                .ends_with(['.', '(', '['])
            || (j > 0 && tokens[start + j - 1].is_punct("::"));
        if j > 0 && !glue {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn toks(src: &str) -> Vec<Token> {
        lex(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let t = toks("let h = config.hdim * 2;\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "h", "=", "config", ".", "hdim", "*", "2", ";"]
        );
        assert_eq!(t[7].kind, TokKind::Int);
        assert!(t.iter().all(|t| t.line == 1));
    }

    #[test]
    fn float_vs_range_vs_method_on_int() {
        let t = toks("a(1.0, 0..n, 2e-3, 1.max(x));\n");
        let kinds: Vec<(TokKind, &str)> = t
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            kinds,
            [
                (TokKind::Float, "1.0"),
                (TokKind::Int, "0"),
                (TokKind::Float, "2e-3"),
                (TokKind::Int, "1"),
            ]
        );
        assert!(t.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn fused_operators() {
        let t = toks("Dense::new(0..=9, || x -> y => z)\n");
        let fused: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text.len() > 1)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(fused, ["::", "..=", "->", "=>"]);
    }

    #[test]
    fn hex_literals_stay_int() {
        let t = toks("seed ^ 0xA77\n");
        assert_eq!(t[2].kind, TokKind::Int);
        assert_eq!(t[2].text, "0xA77");
    }

    #[test]
    fn matching_close_and_split_args() {
        let t = toks("f(a, g(b, c), [d, e])\n");
        let open = t.iter().position(|t| t.is_punct("(")).unwrap();
        let close = matching_close(&t, open).unwrap();
        assert!(t[close].is_punct(")"));
        let args = split_args(&t, open + 1, close);
        assert_eq!(args.len(), 3);
        assert_eq!(render(&t, args[1].0, args[1].1), "g(b, c)");
    }

    #[test]
    fn test_region_flag_propagates() {
        let t = toks("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n");
        assert!(!t[0].in_test);
        assert!(t.iter().any(|t| t.is_ident("tests") && t.in_test));
    }

    #[test]
    fn raw_strings_are_opaque_to_the_code_channel() {
        // The `//`, `"` and `/` inside the raw string must not open a
        // comment or terminate the literal early; `after` still lexes.
        let t = toks("let re = r#\"a \" quote // not a comment / { } \"#; let after = 1;\n");
        assert!(t.iter().any(|t| t.is_ident("after")));
        assert!(t.iter().any(|t| t.kind == TokKind::Str));
        // No stray brace tokens leaked out of the literal.
        assert!(!t.iter().any(|t| t.is_punct("{")));
        assert!(t.iter().any(|t| t.is_ident("re")));
    }

    #[test]
    fn nested_block_comments_close_at_the_outermost_level() {
        let t = toks("let a = 1; /* outer /* inner */ still a comment */ let b = 2;\n");
        let idents: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "a", "let", "b"]);
        assert!(!t.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn char_literals_with_quote_and_slash_do_not_derail_the_lexer() {
        // A '"' char must not open a string state and a '/' char must
        // not pair with the next '/' into a comment.
        let t = toks("if c == '\"' || c == '/' { skip(); } let tail = 9;\n");
        assert!(t.iter().any(|t| t.is_ident("tail")));
        assert!(t.iter().any(|t| t.is_ident("skip")));
        let t2 = toks("let q = '\\''; let z = 3;\n");
        assert!(t2.iter().any(|t| t.is_ident("z")));
    }
}
