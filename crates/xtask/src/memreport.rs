//! Memory-ceiling report plumbing for `cargo run -p xtask -- mem-report`.
//!
//! Parses the line-oriented output of the `graph_mem` harness
//! (`memgraph <scenario> vmhwm_kb <u64> users <u64> tweets <u64>
//! retweets <u64>`) and renders `BENCH_graph.json`: the committed
//! peak-RSS record for the dataset-generation scenarios — the memory
//! ceiling ROADMAP item 1 (million-user socialsim) is benchmarked
//! against. The harness self-reports `VmHWM` from `/proc/self/status`
//! (std-only; off Linux it prints a skip notice instead of numbers).
//! The first run seeds the `baseline` section; later runs preserve it
//! and refresh `current`. `--check` compares a fresh run against the
//! committed `current` numbers and fails when the peak grows beyond
//! tolerance.

/// One dataset-generation measurement. `vmhwm_kb` is the process peak
/// resident set (`VmHWM`) in kibibytes; the corpus-size columns record
/// what that peak paid for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEntry {
    /// Scenario id, e.g. `dataset/generate_2k_users`.
    pub name: String,
    /// Peak resident set size in KiB, from `/proc/self/status` VmHWM.
    pub vmhwm_kb: u64,
    /// Users in the generated follower graph.
    pub users: u64,
    /// Root tweets generated.
    pub tweets: u64,
    /// Retweet events across all cascades.
    pub retweets: u64,
}

/// Extract every `memgraph ...` line from a harness run. Non-matching
/// lines (cargo chatter, skip notices) are ignored.
pub fn parse_mem_lines(out: &str) -> Vec<MemEntry> {
    let mut entries = Vec::new();
    for line in out.lines() {
        let Some(rest) = line.strip_prefix("memgraph ") else {
            continue;
        };
        let mut words = rest.split_whitespace();
        let Some(name) = words.next() else { continue };
        let mut vmhwm_kb = None;
        let mut users = None;
        let mut tweets = None;
        let mut retweets = None;
        while let (Some(key), Some(value)) = (words.next(), words.next()) {
            let slot = match key {
                "vmhwm_kb" => &mut vmhwm_kb,
                "users" => &mut users,
                "tweets" => &mut tweets,
                "retweets" => &mut retweets,
                _ => continue,
            };
            *slot = value.parse::<u64>().ok();
        }
        let (Some(vmhwm_kb), Some(users), Some(tweets), Some(retweets)) =
            (vmhwm_kb, users, tweets, retweets)
        else {
            continue;
        };
        entries.push(MemEntry {
            name: name.to_string(),
            vmhwm_kb,
            users,
            tweets,
            retweets,
        });
    }
    entries
}

/// Pull a named entry section (`baseline` / `current`) out of a
/// previously rendered `BENCH_graph.json`. Only understands the exact
/// shape [`render_json`] writes.
pub fn parse_section(json: &str, title: &str) -> Vec<MemEntry> {
    let needle = format!("\"{title}\": {{");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in json[start..].lines().skip(1) {
        let line = line.trim();
        if line == "}" || line == "}," {
            break;
        }
        let Some(entry) = parse_entry_line(line) else {
            continue;
        };
        entries.push(entry);
    }
    entries
}

/// Compare a fresh run against committed numbers. A scenario regresses
/// when its peak RSS grows more than `tolerance` (e.g. `0.25` = +25%)
/// over the committed ceiling. Scenarios present on only one side are
/// skipped — adding or retiring a scale point is not a regression.
pub fn regressions(committed: &[MemEntry], fresh: &[MemEntry], tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for f in fresh {
        let Some(c) = committed.iter().find(|c| c.name == f.name) else {
            continue;
        };
        if c.vmhwm_kb > 0 && (f.vmhwm_kb as f64) > (c.vmhwm_kb as f64) * (1.0 + tolerance) {
            out.push(format!(
                "{}: peak RSS {} KiB vs committed ceiling {} KiB ({:+.1}%, tolerance +{:.0}%)",
                f.name,
                f.vmhwm_kb,
                c.vmhwm_kb,
                (f.vmhwm_kb as f64 / c.vmhwm_kb as f64 - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    out
}

fn parse_entry_line(line: &str) -> Option<MemEntry> {
    // `"name": { "vmhwm_kb": 28096, "users": 2000, "tweets": 310, "retweets": 5121 },`
    let rest = line.strip_prefix('"')?;
    let name_end = rest.find('"')?;
    let name = rest[..name_end].to_string();
    let vmhwm_kb = field(rest, "\"vmhwm_kb\": ")?;
    let users = field(rest, "\"users\": ")?;
    let tweets = field(rest, "\"tweets\": ")?;
    let retweets = field(rest, "\"retweets\": ")?;
    Some(MemEntry {
        name,
        vmhwm_kb,
        users,
        tweets,
        retweets,
    })
}

fn field(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let tail = &line[at..];
    let end = tail
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Render the committed report: recorded ceiling, the fresh run, and a
/// per-scenario peak ratio (current / baseline) where names overlap.
pub fn render_json(baseline: &[MemEntry], current: &[MemEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cargo run --release -p bench --bin graph_mem\",\n");
    out.push_str(
        "  \"unit\": \"vmhwm_kb = peak resident set (VmHWM) in KiB, \
         from /proc/self/status\",\n",
    );
    render_section(&mut out, "baseline", baseline);
    out.push_str(",\n");
    render_section(&mut out, "current", current);
    out.push_str(",\n  \"peak_vs_baseline\": {\n");
    let mut pairs = Vec::new();
    for cur in current {
        if let Some(base) = baseline.iter().find(|b| b.name == cur.name) {
            if base.vmhwm_kb > 0 {
                pairs.push(format!(
                    "    \"{}\": {{ \"vmhwm\": {:.2} }}",
                    cur.name,
                    cur.vmhwm_kb as f64 / base.vmhwm_kb as f64
                ));
            }
        }
    }
    out.push_str(&pairs.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn render_section(out: &mut String, title: &str, entries: &[MemEntry]) {
    out.push_str(&format!("  \"{title}\": {{\n"));
    let lines: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    \"{}\": {{ \"vmhwm_kb\": {}, \"users\": {}, \"tweets\": {}, \
                 \"retweets\": {} }}",
                e.name, e.vmhwm_kb, e.users, e.tweets, e.retweets
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_lines_parse_the_harness_report_format() {
        let out = "   Compiling bench v0.1.0\n\
                   generating dataset/generate_2k_users...\n\
                   memgraph dataset/generate_2k_users vmhwm_kb 28096 \
                   users 2000 tweets 310 retweets 5121\n\
                   memgraph dataset/generate_tiny vmhwm_kb 9120 \
                   users 400 tweets 40 retweets 220\n\
                   mem-report: VmHWM unavailable on this platform, skipping\n";
        let entries = parse_mem_lines(out);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "dataset/generate_2k_users");
        assert_eq!(entries[0].vmhwm_kb, 28096);
        assert_eq!(entries[0].users, 2000);
        assert_eq!(entries[0].tweets, 310);
        assert_eq!(entries[0].retweets, 5121);
        assert_eq!(entries[1].vmhwm_kb, 9120);
    }

    #[test]
    fn sections_survive_a_render_parse_round_trip() {
        let baseline = vec![MemEntry {
            name: "dataset/generate_2k_users".into(),
            vmhwm_kb: 20000,
            users: 2000,
            tweets: 310,
            retweets: 5121,
        }];
        let current = vec![MemEntry {
            name: "dataset/generate_2k_users".into(),
            vmhwm_kb: 25000,
            users: 2000,
            tweets: 310,
            retweets: 5121,
        }];
        let json = render_json(&baseline, &current);
        assert_eq!(parse_section(&json, "baseline"), baseline);
        assert_eq!(parse_section(&json, "current"), current);
        assert!(parse_section(&json, "nonexistent").is_empty());
        // 1.25× peak shows up in the summary.
        assert!(json.contains("\"vmhwm\": 1.25"));
    }

    #[test]
    fn peak_growth_beyond_tolerance_regresses() {
        let entry = |name: &str, kb: u64| MemEntry {
            name: name.into(),
            vmhwm_kb: kb,
            users: 2000,
            tweets: 300,
            retweets: 5000,
        };
        let committed = vec![
            entry("ok", 20000),
            entry("bloated", 20000),
            entry("retired", 20000),
        ];
        let fresh = vec![
            entry("ok", 22000),      // +10%: within tolerance
            entry("bloated", 30000), // +50%: regression
            entry("new", 90000),     // no committed row — skipped
        ];
        let regs = regressions(&committed, &fresh, 0.25);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("bloated:"), "{regs:?}");
        assert!(regs[0].contains("+50.0%"));
    }

    #[test]
    fn zero_committed_peak_never_divides() {
        let z = MemEntry {
            name: "z".into(),
            vmhwm_kb: 0,
            users: 0,
            tweets: 0,
            retweets: 0,
        };
        let f = MemEntry {
            vmhwm_kb: 5,
            ..z.clone()
        };
        assert!(regressions(&[z.clone()], &[f], 0.25).is_empty());
        // Rendering a summary against a zero baseline skips the pair.
        let json = render_json(&[z.clone()], &[z]);
        assert!(json.contains("\"peak_vs_baseline\": {\n\n  }"));
    }
}
