//! Serving-load report plumbing for `cargo run -p xtask -- serving-report`.
//!
//! Parses the line-oriented output of the `retina_serve bench` harness
//! (`serving <scenario> pps <f64> p50 <dur> p99 <dur> (<n> requests)`)
//! and renders `BENCH_serving.json`: a committed before/after record of
//! prediction-server throughput and tail latency. The first run seeds
//! the `baseline` section; later runs preserve it and refresh
//! `current`. `--check` compares a fresh run against the committed
//! `current` numbers and fails on a throughput drop or a p99 blow-up
//! beyond tolerance.

use crate::bench::parse_duration_ns;

/// One load-scenario measurement. Latencies are normalized to
/// nanoseconds; throughput is predictions per second.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingEntry {
    /// Scenario id, e.g. `serve/static_w2_b16`.
    pub name: String,
    /// Completed predictions per second over the timed window.
    pub pps: f64,
    /// Median submit-to-resolve latency, in ns.
    pub p50_ns: f64,
    /// 99th-percentile submit-to-resolve latency, in ns.
    pub p99_ns: f64,
    /// Requests completed in the timed window.
    pub requests: u64,
}

/// Extract every `serving ...` line from a harness run. Non-matching
/// lines (cargo chatter, progress notes) are skipped.
pub fn parse_serving_lines(out: &str) -> Vec<ServingEntry> {
    let mut entries = Vec::new();
    for line in out.lines() {
        let Some(rest) = line.strip_prefix("serving ") else {
            continue;
        };
        let Some(pps_pos) = rest.find(" pps ") else {
            continue;
        };
        let name = rest[..pps_pos].trim().to_string();
        let tail = &rest[pps_pos + " pps ".len()..];
        let Some(p50_pos) = tail.find(" p50 ") else {
            continue;
        };
        let Some(pps) = tail[..p50_pos].trim().parse::<f64>().ok() else {
            continue;
        };
        let after_p50 = &tail[p50_pos + " p50 ".len()..];
        let Some(p99_pos) = after_p50.find(" p99 ") else {
            continue;
        };
        let Some(p50_ns) = parse_duration_ns(&after_p50[..p99_pos]) else {
            continue;
        };
        let after_p99 = &after_p50[p99_pos + " p99 ".len()..];
        let Some(par) = after_p99.find('(') else {
            continue;
        };
        let Some(p99_ns) = parse_duration_ns(&after_p99[..par]) else {
            continue;
        };
        let requests = after_p99[par + 1..]
            .trim_end()
            .trim_end_matches(')')
            .trim_end_matches("requests")
            .trim()
            .parse()
            .unwrap_or(0);
        entries.push(ServingEntry {
            name,
            pps,
            p50_ns,
            p99_ns,
            requests,
        });
    }
    entries
}

/// Pull a named entry section (`baseline` / `current`) out of a
/// previously rendered `BENCH_serving.json`. Only understands the exact
/// shape [`render_json`] writes.
pub fn parse_section(json: &str, title: &str) -> Vec<ServingEntry> {
    let needle = format!("\"{title}\": {{");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in json[start..].lines().skip(1) {
        let line = line.trim();
        if line == "}" || line == "}," {
            break;
        }
        let Some(entry) = parse_entry_line(line) else {
            continue;
        };
        entries.push(entry);
    }
    entries
}

/// Compare a fresh run against committed numbers. A scenario regresses
/// when its throughput drops more than `pps_tolerance` (e.g. `0.15` =
/// −15%) or its p99 latency rises more than `p99_tolerance`. Scenarios
/// present on only one side are skipped — adding or retiring a load
/// shape is not a regression.
pub fn regressions(
    committed: &[ServingEntry],
    fresh: &[ServingEntry],
    pps_tolerance: f64,
    p99_tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for f in fresh {
        let Some(c) = committed.iter().find(|c| c.name == f.name) else {
            continue;
        };
        if c.pps > 0.0 && f.pps < c.pps * (1.0 - pps_tolerance) {
            out.push(format!(
                "{}: throughput {:.0} pps vs committed {:.0} pps ({:+.1}%, tolerance -{:.0}%)",
                f.name,
                f.pps,
                c.pps,
                (f.pps / c.pps - 1.0) * 100.0,
                pps_tolerance * 100.0
            ));
        }
        if c.p99_ns > 0.0 && f.p99_ns > c.p99_ns * (1.0 + p99_tolerance) {
            out.push(format!(
                "{}: p99 {:.3}ms vs committed {:.3}ms (+{:.1}%, tolerance {:.0}%)",
                f.name,
                f.p99_ns / 1e6,
                c.p99_ns / 1e6,
                (f.p99_ns / c.p99_ns - 1.0) * 100.0,
                p99_tolerance * 100.0
            ));
        }
    }
    out
}

fn parse_entry_line(line: &str) -> Option<ServingEntry> {
    // `"name": { "pps": 1200.5, "p50_ns": 80000, "p99_ns": 410000, "requests": 4000 },`
    let rest = line.strip_prefix('"')?;
    let name_end = rest.find('"')?;
    let name = rest[..name_end].to_string();
    let pps = field(rest, "\"pps\": ")?;
    let p50_ns = field(rest, "\"p50_ns\": ")?;
    let p99_ns = field(rest, "\"p99_ns\": ")?;
    let requests = field(rest, "\"requests\": ")? as u64;
    Some(ServingEntry {
        name,
        pps,
        p50_ns,
        p99_ns,
        requests,
    })
}

fn field(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let tail = &line[at..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Render the committed report: recorded baseline, the fresh run, and a
/// per-scenario throughput ratio (current / baseline) where names
/// overlap.
pub fn render_json(baseline: &[ServingEntry], current: &[ServingEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cargo run --release -p bench --bin retina_serve -- bench\",\n");
    out.push_str("  \"unit\": \"pps = predictions/second, latencies in nanoseconds\",\n");
    render_section(&mut out, "baseline", baseline);
    out.push_str(",\n");
    render_section(&mut out, "current", current);
    out.push_str(",\n  \"throughput_vs_baseline\": {\n");
    let mut pairs = Vec::new();
    for cur in current {
        if let Some(base) = baseline.iter().find(|b| b.name == cur.name) {
            if base.pps > 0.0 && base.p99_ns > 0.0 {
                pairs.push(format!(
                    "    \"{}\": {{ \"pps\": {:.2}, \"p99\": {:.2} }}",
                    cur.name,
                    cur.pps / base.pps,
                    cur.p99_ns / base.p99_ns
                ));
            }
        }
    }
    out.push_str(&pairs.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn render_section(out: &mut String, title: &str, entries: &[ServingEntry]) {
    out.push_str(&format!("  \"{title}\": {{\n"));
    let lines: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    \"{}\": {{ \"pps\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"requests\": {} }}",
                e.name, e.pps, e.p50_ns, e.p99_ns, e.requests
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_lines_parse_the_harness_report_format() {
        let out = "   Compiling bench v0.1.0\n\
                   starting warmup...\n\
                   serving serve/static_w2_b16      pps 14212.7  \
                   p50 312.4µs  p99 1.21ms  (4000 requests)\n\
                   serving serve/dynamic_w4_b8      pps 881.05  \
                   p50 3.853832ms  p99 11.2ms  (800 requests)\n\
                   random noise line\n";
        let entries = parse_serving_lines(out);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "serve/static_w2_b16");
        assert_eq!(entries[0].pps, 14212.7);
        assert_eq!(entries[0].p50_ns, 312400.0);
        assert_eq!(entries[0].p99_ns, 1.21e6);
        assert_eq!(entries[0].requests, 4000);
        assert_eq!(entries[1].p50_ns, 3853832.0);
    }

    #[test]
    fn sections_survive_a_render_parse_round_trip() {
        let baseline = vec![ServingEntry {
            name: "serve/static_w2_b16".into(),
            pps: 10000.0,
            p50_ns: 400000.0,
            p99_ns: 2000000.0,
            requests: 4000,
        }];
        let current = vec![ServingEntry {
            name: "serve/static_w2_b16".into(),
            pps: 12000.0,
            p50_ns: 350000.0,
            p99_ns: 1500000.0,
            requests: 4000,
        }];
        let json = render_json(&baseline, &current);
        assert_eq!(parse_section(&json, "baseline"), baseline);
        assert_eq!(parse_section(&json, "current"), current);
        assert!(parse_section(&json, "nonexistent").is_empty());
        // 1.2× throughput shows up in the summary.
        assert!(json.contains("\"pps\": 1.20"));
    }

    #[test]
    fn throughput_drop_and_p99_rise_both_regress() {
        let entry = |name: &str, pps: f64, p99: f64| ServingEntry {
            name: name.into(),
            pps,
            p50_ns: p99 / 4.0,
            p99_ns: p99,
            requests: 1000,
        };
        let committed = vec![
            entry("ok", 1000.0, 1e6),
            entry("slow", 1000.0, 1e6),
            entry("spiky", 1000.0, 1e6),
            entry("retired", 1000.0, 1e6),
        ];
        let fresh = vec![
            entry("ok", 900.0, 1.2e6),     // within both tolerances
            entry("slow", 700.0, 1e6),     // −30% throughput
            entry("spiky", 1000.0, 1.5e6), // +50% p99
            entry("new", 1.0, 9e9),        // no committed row — skipped
        ];
        let regs = regressions(&committed, &fresh, 0.15, 0.25);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs[0].starts_with("slow:"), "{regs:?}");
        assert!(regs[0].contains("-30.0%"));
        assert!(regs[1].starts_with("spiky:"), "{regs:?}");
        assert!(regs[1].contains("+50.0%"));
    }

    #[test]
    fn zero_committed_numbers_never_divide() {
        let z = ServingEntry {
            name: "z".into(),
            pps: 0.0,
            p50_ns: 0.0,
            p99_ns: 0.0,
            requests: 0,
        };
        let f = ServingEntry {
            name: "z".into(),
            pps: 5.0,
            p50_ns: 1.0,
            p99_ns: 1.0,
            requests: 1,
        };
        assert!(regressions(&[z.clone()], &[f], 0.15, 0.25).is_empty());
        // Rendering a summary against a zero baseline skips the pair.
        let json = render_json(&[z.clone()], &[z]);
        assert!(json.contains("\"throughput_vs_baseline\": {\n\n  }"));
    }
}
