//! A14 — capacity and growth discipline.
//!
//! Two memory-shape rules over the [`crate::memflow`] model:
//!
//! - **Missing pre-size (Warning).** A `Vec::new()` binding in a
//!   mem-root-reachable fn whose `push` sites sit inside loops with a
//!   *derivable* trip count (a `for _ in 0..n` / `..=` range header, or
//!   a `.len()` bound check on the vec itself) reallocates log₂(n)
//!   times for no reason — `Vec::with_capacity` is a one-line fix that
//!   the million-user dataset generator (ROADMAP item 1) multiplies by
//!   every user. Non-derivable growth (pushing under a dynamic filter)
//!   is not flagged.
//! - **Unbounded growth (Error).** A growable collection field on a
//!   *long-lived* struct (servers, pools, caches and the state they
//!   own — see [`crate::memflow::MemModel::build`]) that has insert
//!   sites but no remove/clear/drain/pop site *and* no `.len()` bound
//!   check anywhere in its crate will grow for the life of the process:
//!   in a serving deployment that is an OOM with a fuse measured in
//!   traffic, not a perf nit. The finding carries the insert chain from
//!   the memory roots.
//!
//! Suppress (with a reason) via `// lint: allow(mem-flow) <reason>`;
//! the key is shared with A15, whose findings are Notes. The
//! reasonless-allow misuse check for `mem-flow` runs once, here.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lexer::{render, TokKind};
use crate::memflow::{
    alloc_sites, field_method_sites, has_len_bound, loop_depths, mem_roots, MemModel, GROW_VERBS,
    SHRINK_VERBS,
};

pub struct CapacityGrowth;

/// Iterator adapters whose presence in a loop header makes the trip
/// count underivable from a `.len()` — pushing under these is demand-
/// driven, not pre-sizable.
const UNDERIVABLE_ADAPTERS: [&str; 7] = [
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "take_while",
    "skip_while",
    "by_ref",
];

impl Pass for CapacityGrowth {
    fn id(&self) -> &'static str {
        "A14"
    }

    fn description(&self) -> &'static str {
        "capacity/growth: derivable-length Vec::new+push loops on the memory \
         hot path must pre-size with with_capacity; growable collections on \
         long-lived structs must have a remove/clear/bound site"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let model = MemModel::build(ctx);

        let mut findings = missing_presize(ctx, &graph);
        findings.extend(unbounded_growth(ctx, &graph, &model));

        // Allow-comment filtering, per file.
        for file in &ctx.files {
            let (allowed, _) = file.source.allows("mem-flow");
            findings.retain(|f| f.path != file.source.path || !allowed.contains(&f.line));
        }
        out.findings = findings;

        // Satellite lint (shared with A15, run once): every
        // allow(mem-flow) must carry a reason.
        for file in &ctx.files {
            let (_, missing) = file.source.allows("mem-flow");
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(mem-flow) without a reason — state why this \
                              growth pattern is acceptable"
                        .into(),
                });
            }
        }
        out
    }
}

/// Rule (a): `Vec::new()` at loop depth 0 whose pushes happen inside
/// derivable-length loops of a mem-root-reachable fn.
fn missing_presize(ctx: &Context, graph: &CallGraph) -> Vec<Finding> {
    let roots = mem_roots(graph);
    let reach = graph.reachable(&roots);
    let sites = alloc_sites(ctx, graph);
    let mut findings = Vec::new();

    for site in &sites {
        if !site.hot || site.loop_depth > 0 || site.shape != "Vec::new" {
            continue;
        }
        let item = &graph.index.fns[site.fn_id];
        let Some((b0, b1)) = item.body else { continue };
        let file = &ctx.files[item.file];
        let toks = &file.tokens;
        // Locate the `new` token of this site and its `let` binding.
        let Some(k) = (b0..b1).find(|&k| {
            toks[k].line == site.line
                && toks[k].is_ident("new")
                && k >= 2
                && toks[k - 1].is_punct("::")
                && toks[k - 2].is_ident("Vec")
        }) else {
            continue;
        };
        let Some(name) = binding_name(toks, b0, k) else {
            continue;
        };
        let depths = loop_depths(toks, b0, b1);
        // Pushes to the binding inside a loop, with the innermost
        // enclosing header derivable — or the vec itself len-bounded.
        let bounded = vec_len_bounded(toks, b0, b1, &name);
        let derivable_push = (b0..b1).any(|m| {
            toks[m].is_ident("push")
                && m >= 2
                && toks[m - 1].is_punct(".")
                && toks[m - 2].is_ident(&name)
                && toks.get(m + 1).is_some_and(|n| n.is_punct("("))
                && depths[m - b0] > 0
                && (bounded || derivable_header(toks, b0, m))
        });
        if !derivable_push {
            continue;
        }
        let chain_str = reach
            .get(&site.fn_id)
            .map(|chain| graph.chain_display(chain))
            .unwrap_or_else(|| item.display());
        findings.push(Finding {
            rule: "A14",
            key: "mem-flow",
            severity: Severity::Warning,
            path: file.source.path.clone(),
            line: site.line,
            message: format!(
                "`{name}` is built with `Vec::new()` but its loop length is \
                 derivable in `{}` (reachable via {chain_str}); pre-size with \
                 `Vec::with_capacity` to avoid log2(n) reallocations — annotate \
                 `// lint: allow(mem-flow) <reason>` if the estimate is unknowable",
                item.display()
            ),
        });
    }
    findings
}

/// The binding ident of the `let` statement containing token `k`
/// (`let mut out: Vec<T> = Vec::new()` → `out`). Walks back to the
/// nearest `let` within the statement.
fn binding_name(toks: &[crate::lexer::Token], b0: usize, k: usize) -> Option<String> {
    let mut m = k;
    while m > b0 {
        m -= 1;
        let t = &toks[m];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.is_ident("let") {
            let name = toks.get(m + 1).filter(|t| t.kind == TokKind::Ident)?;
            if name.text == "mut" {
                return toks
                    .get(m + 2)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            return Some(name.text.clone());
        }
        if k - m > 24 {
            return None;
        }
    }
    None
}

/// Is `<name>.len()` compared against anything in the body? (The
/// cascade's `out.len() >= cfg.max_retweets` budget check makes the
/// final length derivable even though the loop itself is dynamic.)
fn vec_len_bounded(toks: &[crate::lexer::Token], b0: usize, b1: usize, name: &str) -> bool {
    for m in b0 + 2..b1 {
        if !toks[m].is_ident("len") || !(toks[m - 1].is_punct(".") && toks[m - 2].is_ident(name)) {
            continue;
        }
        let end = (m + 8).min(b1);
        if (m + 1..end).any(|j| matches!(toks[j].text.as_str(), ">" | "<")) {
            return true;
        }
    }
    false
}

/// Is the innermost loop header enclosing token `m` derivable — a
/// `for _ in <expr>` whose iterated expression is a range or a plain
/// collection walk with no demand-driven adapter?
fn derivable_header(toks: &[crate::lexer::Token], b0: usize, m: usize) -> bool {
    // Find the innermost enclosing `for`/`while` header: the closest
    // preceding loop keyword whose body braces contain `m`.
    let mut best: Option<(usize, usize)> = None;
    for k in b0..m {
        if !matches!(toks[k].text.as_str(), "for" | "while") || toks[k].kind != TokKind::Ident {
            continue;
        }
        let mut depth = 0i32;
        let mut open = None;
        for j in k + 1..m + 1 {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = crate::lexer::matching_close(toks, open) else {
            continue;
        };
        if open < m && m < close {
            best = Some((k, open));
        }
    }
    let Some((kw, open)) = best else {
        return false;
    };
    if toks[kw].is_ident("while") {
        return false; // `while` trip counts are never length-derivable
    }
    let header_start = (kw..open)
        .find(|&j| toks[j].is_ident("in"))
        .map(|j| j + 1)
        .unwrap_or(kw + 1);
    let header: Vec<&str> = toks[header_start..open]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    if header
        .iter()
        .any(|t| UNDERIVABLE_ADAPTERS.iter().any(|a| t == a))
    {
        return false;
    }
    // A range (`0..n`), an explicit `.len()`, or a plain `.iter()`-style
    // walk over a sized collection are all derivable.
    header
        .iter()
        .any(|t| matches!(*t, ".." | "..=" | "len" | "iter" | "iter_mut" | "enumerate"))
        || header.iter().all(|t| !t.contains('('))
}

/// Rule (b): growable collection fields on long-lived structs with
/// insert sites but no shrink site and no len-bound in their crate.
fn unbounded_growth(ctx: &Context, graph: &CallGraph, model: &MemModel) -> Vec<Finding> {
    let roots = mem_roots(graph);
    let reach = graph.reachable(&roots);
    let mut findings = Vec::new();

    for name in &model.long_lived {
        let Some(layout) = model.layouts.get(name) else {
            continue;
        };
        for field in &layout.fields {
            let growable = field.heap.as_ref().is_some_and(|h| h.growable) || field.ty.growable();
            if !growable {
                continue;
            }
            let grows = field_method_sites(ctx, &layout.crate_name, &field.name, &GROW_VERBS);
            if grows.is_empty() {
                continue;
            }
            let shrinks = field_method_sites(ctx, &layout.crate_name, &field.name, &SHRINK_VERBS);
            if !shrinks.is_empty() || has_len_bound(ctx, &layout.crate_name, &field.name) {
                continue;
            }
            let (fi, k) = grows[0];
            let file = &ctx.files[fi];
            let toks = &file.tokens;
            let line = toks[k].line;
            // The insert chain: mem-roots → the fn containing the first
            // insert site, when reachable.
            let insert_fn = graph
                .index
                .fns
                .iter()
                .position(|f| f.file == fi && f.body.is_some_and(|(b0, b1)| b0 <= k && k < b1));
            let chain_str = insert_fn
                .and_then(|fid| reach.get(&fid).map(|c| graph.chain_display(c)))
                .or_else(|| insert_fn.map(|fid| graph.index.fns[fid].display()))
                .unwrap_or_else(|| file.source.path.clone());
            let site = render(toks, k.saturating_sub(2), (k + 2).min(toks.len()));
            findings.push(Finding {
                rule: "A14",
                key: "mem-flow",
                severity: Severity::Error,
                path: file.source.path.clone(),
                line,
                message: format!(
                    "`{}.{}` ({}) on long-lived `{}` grows via `{site}…` \
                     (insert chain: {chain_str}) but no remove/clear/drain or \
                     `.len()` bound exists on any path in crate `{}` — unbounded \
                     growth in a long-lived process is an OOM, not a perf nit",
                    name,
                    field.name,
                    field.ty.describe(),
                    name,
                    layout.crate_name
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        CapacityGrowth.run(&ctx).findings
    }

    #[test]
    fn derivable_vec_new_push_loop_is_a_warning() {
        let f = run_on(&[(
            "crates/socialsim/src/dataset.rs",
            "pub struct Dataset;\n\
             impl Dataset {\n\
                 pub fn generate(n: usize) -> Vec<usize> {\n\
                     let mut tweets: Vec<usize> = Vec::new();\n\
                     for i in 0..n {\n\
                         tweets.push(i);\n\
                     }\n\
                     tweets\n\
                 }\n\
             }\n",
        )]);
        let a14: Vec<&Finding> = f.iter().filter(|x| x.rule == "A14").collect();
        assert_eq!(a14.len(), 1, "{f:?}");
        assert_eq!(a14[0].severity, Severity::Warning);
        assert!(a14[0].message.contains("`tweets`"));
        assert!(a14[0].message.contains("with_capacity"));
        assert!(a14[0].message.contains("Dataset::generate"));
    }

    #[test]
    fn with_capacity_filtered_loops_and_cold_fns_are_clean() {
        let f = run_on(&[(
            "crates/socialsim/src/dataset.rs",
            "pub struct Dataset;\n\
             impl Dataset {\n\
                 pub fn generate(n: usize) -> Vec<usize> {\n\
                     let mut sized = Vec::with_capacity(n);\n\
                     for i in 0..n { sized.push(i); }\n\
                     let mut dynamic: Vec<usize> = Vec::new();\n\
                     for i in (0..n).filter(|i| i % 3 == 0) { dynamic.push(i); }\n\
                     sized\n\
                 }\n\
             }\n\
             pub fn cold(n: usize) -> Vec<usize> {\n\
                 let mut v: Vec<usize> = Vec::new();\n\
                 for i in 0..n { v.push(i); }\n\
                 v\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn len_bounded_dynamic_loop_is_still_derivable() {
        let f = run_on(&[(
            "crates/socialsim/src/cascade.rs",
            "pub struct CascadeSimulator;\n\
             impl CascadeSimulator {\n\
                 pub fn simulate(&self, cap: usize) -> Vec<u32> {\n\
                     let mut out: Vec<u32> = Vec::new();\n\
                     while self.more() {\n\
                         if out.len() >= cap { break; }\n\
                         out.push(1);\n\
                     }\n\
                     out\n\
                 }\n\
                 fn more(&self) -> bool { false }\n\
             }\n",
        )]);
        let a14: Vec<&Finding> = f.iter().filter(|x| x.rule == "A14").collect();
        assert_eq!(a14.len(), 1, "{f:?}");
        assert!(a14[0].message.contains("`out`"));
    }

    #[test]
    fn unbounded_map_on_long_lived_struct_is_an_error() {
        let f = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct ResultCache {\n\
                 by_request: std::collections::HashMap<u64, f32>,\n\
             }\n\
             impl ResultCache {\n\
                 pub fn record(&mut self, id: u64, score: f32) {\n\
                     self.by_request.insert(id, score);\n\
                 }\n\
             }\n",
        )]);
        let errors: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == "A14" && x.severity == Severity::Error)
            .collect();
        assert_eq!(errors.len(), 1, "{f:?}");
        assert!(errors[0].message.contains("ResultCache.by_request"));
        assert!(errors[0].message.contains("insert chain"));
        assert!(errors[0].message.contains("HashMap"));
    }

    #[test]
    fn drained_and_len_bounded_long_lived_collections_are_clean() {
        let f = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct QueueState { pending: std::collections::VecDeque<u64> }\n\
             pub struct Shared { state: std::sync::Mutex<QueueState>, cap: usize }\n\
             pub struct BufferPool { free: Vec<u64> }\n\
             impl Shared {\n\
                 pub fn submit(&self, id: u64) {\n\
                     let mut state = self.state.lock().expect(\"lock\");\n\
                     if state.pending.len() >= self.cap { return; }\n\
                     state.pending.push_back(id);\n\
                 }\n\
                 pub fn take(&self) -> Vec<u64> {\n\
                     let mut state = self.state.lock().expect(\"lock\");\n\
                     state.pending.drain(..).collect()\n\
                 }\n\
             }\n\
             impl BufferPool {\n\
                 pub fn recycle(&mut self, b: u64) { self.free.push(b); }\n\
                 pub fn grab(&mut self) -> Option<u64> { self.free.pop() }\n\
             }\n",
        )]);
        let errors: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == "A14" && x.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn allow_comment_suppresses_and_needs_a_reason() {
        let f = run_on(&[(
            "crates/socialsim/src/dataset.rs",
            "pub struct Dataset;\n\
             impl Dataset {\n\
                 pub fn generate(n: usize) -> Vec<usize> {\n\
                     // lint: allow(mem-flow) capacity is config-dependent, measured tiny\n\
                     let mut ok: Vec<usize> = Vec::new();\n\
                     for i in 0..n { ok.push(i); }\n\
                     // lint: allow(mem-flow)\n\
                     let mut bad: Vec<usize> = Vec::new();\n\
                     for i in 0..n { bad.push(i); }\n\
                     ok\n\
                 }\n\
             }\n",
        )]);
        let a14: Vec<&Finding> = f.iter().filter(|x| x.rule == "A14").collect();
        assert_eq!(a14.len(), 1, "reasonless allow does not suppress: {f:?}");
        let misuses: Vec<&Finding> = f.iter().filter(|x| x.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{f:?}");
    }
}
