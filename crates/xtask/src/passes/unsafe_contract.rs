//! A13 — unsafe-contract discipline.
//!
//! PR 9's simd tier introduced the workspace's only `unsafe` (the AVX2
//! kernel dispatch in `nn::tensor32`); this pass machine-enforces the
//! contract that made it acceptable, so the next `unsafe` cannot land
//! without the same rigor:
//!
//! - every `unsafe` block/fn/impl must carry a `// SAFETY:` comment on
//!   the same line or in the comment/attribute run immediately above it;
//! - a `#[target_feature]` fn may only be called from a body that
//!   performs runtime `is_x86_feature_detected!` dispatch before the
//!   call — compile-time `cfg` alone is not evidence the CPU has the
//!   feature;
//! - `get_unchecked`/`from_raw_parts`-style unchecked ops and raw
//!   pointer casts outside the blessed simd kernel file are Errors —
//!   the bounds-checked kernels are the only sanctioned hot path.
//!
//! All findings are **Error** severity: an unsafe contract is either
//! upheld or it is not. Suppress (with a reason) via
//! `// lint: allow(unsafe-contract) <reason>`.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::items::ItemIndex;
use crate::lexer::TokKind;

pub struct UnsafeContract;

/// The one file whose kernels are allowed unchecked/raw-pointer ops
/// (today none are used even there, but the simd tier owns the budget).
const BLESSED_SIMD_FILE: &str = "crates/nn/src/tensor32.rs";

/// How many comment/attribute/blank lines above an `unsafe` token the
/// SAFETY comment may sit (the blessed shape interleaves
/// `#[allow(unsafe_code)]` and a lint-allow comment between the two).
const SAFETY_WINDOW: usize = 6;

/// Unchecked-access/raw-parts idents that demand `unsafe` and escape
/// the bounds-checking discipline.
const UNCHECKED_OPS: [&str; 4] = [
    "get_unchecked",
    "get_unchecked_mut",
    "from_raw_parts",
    "from_raw_parts_mut",
];

impl Pass for UnsafeContract {
    fn id(&self) -> &'static str {
        "A13"
    }

    fn description(&self) -> &'static str {
        "unsafe-contract: SAFETY comments on every unsafe block, runtime \
         feature detection before target_feature calls, and no unchecked/raw- \
         pointer ops outside the blessed simd kernels"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let index = crate::items::index(ctx);
        let tf_fns = target_feature_fns(ctx);

        for (fi, file) in ctx.files.iter().enumerate() {
            let toks = &file.tokens;
            let mut findings = Vec::new();
            for k in 0..toks.len() {
                let t = &toks[k];
                if t.in_test || t.kind != TokKind::Ident {
                    continue;
                }
                // (1) `unsafe` without a SAFETY comment.
                if t.text == "unsafe" && !has_safety_comment(file, t.line) {
                    findings.push(Finding {
                        rule: "A13",
                        key: "unsafe-contract",
                        severity: Severity::Error,
                        path: file.source.path.clone(),
                        line: t.line,
                        message: "`unsafe` without a `// SAFETY:` comment — state the \
                                  invariant that makes this sound (on the line above or \
                                  at the end of the unsafe line)"
                            .into(),
                    });
                }
                // (2) `#[target_feature]` fn called outside runtime dispatch.
                if tf_fns.iter().any(|n| n == &t.text)
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                    && !(k > 0 && toks[k - 1].is_ident("fn"))
                    && !detected_before(ctx, &index, fi, k)
                {
                    findings.push(Finding {
                        rule: "A13",
                        key: "unsafe-contract",
                        severity: Severity::Error,
                        path: file.source.path.clone(),
                        line: t.line,
                        message: format!(
                            "`{}` is a #[target_feature] fn but this call is not guarded \
                             by `is_x86_feature_detected!` in the same body — compile-time \
                             cfg does not prove the CPU has the feature",
                            t.text
                        ),
                    });
                }
                // (3) unchecked ops / raw-pointer casts outside the
                // blessed simd kernel file.
                if file.source.path.ends_with(BLESSED_SIMD_FILE) {
                    continue;
                }
                let unchecked = UNCHECKED_OPS.iter().any(|op| t.text == *op)
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("));
                let raw_cast = t.text == "as"
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("*"))
                    && toks
                        .get(k + 2)
                        .is_some_and(|n| n.is_ident("const") || n.is_ident("mut"));
                if unchecked || raw_cast {
                    findings.push(Finding {
                        rule: "A13",
                        key: "unsafe-contract",
                        severity: Severity::Error,
                        path: file.source.path.clone(),
                        line: t.line,
                        message: format!(
                            "{} outside the blessed simd kernels ({BLESSED_SIMD_FILE}) — \
                             the bounds-checked kernel surface is the only sanctioned \
                             unchecked hot path",
                            if unchecked {
                                format!("unchecked op `{}`", t.text)
                            } else {
                                "raw-pointer cast".to_string()
                            }
                        ),
                    });
                }
            }
            let (allowed, _) = file.source.allows("unsafe-contract");
            findings.retain(|f| !allowed.contains(&f.line));
            out.findings.extend(findings);
        }

        // Satellite lint: every allow(unsafe-contract) must carry a reason.
        for file in &ctx.files {
            let (_, missing) = file.source.allows("unsafe-contract");
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(unsafe-contract) without a reason — state why this \
                              unsafe contract deviation is sound"
                        .into(),
                });
            }
        }
        out
    }
}

/// Does line `lineno` (1-based) carry — or sit under — a `SAFETY:`
/// comment? Walks upward through comment-only, attribute and blank
/// lines (at most [`SAFETY_WINDOW`]); any other code line ends the
/// search.
fn has_safety_comment(file: &super::AnalyzedFile, lineno: usize) -> bool {
    let lines = &file.source.lines;
    let mut idx = lineno.saturating_sub(1); // 0-based
    for step in 0..=SAFETY_WINDOW {
        let Some(line) = lines.get(idx) else {
            return false;
        };
        if line.comment.contains("SAFETY:") {
            return true;
        }
        let code = line.code.trim();
        // The unsafe line itself (step 0) is always allowed to continue
        // upward; above it, only comment/attribute/blank lines may
        // intervene between the contract and the keyword.
        if step > 0 && !(code.is_empty() || code.starts_with('#')) {
            return false;
        }
        if idx == 0 {
            return false;
        }
        idx -= 1;
    }
    false
}

/// Names of fns declared under a `#[target_feature(...)]` attribute,
/// workspace-wide.
fn target_feature_fns(ctx: &Context) -> Vec<String> {
    let mut out = Vec::new();
    for file in &ctx.files {
        let toks = &file.tokens;
        for k in 0..toks.len() {
            if !toks[k].is_ident("target_feature") || toks[k].in_test {
                continue;
            }
            if !(k >= 2 && toks[k - 1].is_punct("[") && toks[k - 2].is_punct("#")) {
                continue;
            }
            // The attribute's fn follows within a few tokens (visibility
            // and further attributes may intervene).
            for m in k + 1..(k + 24).min(toks.len()) {
                if toks[m].is_ident("fn") {
                    if let Some(name) = toks.get(m + 1).filter(|t| t.kind == TokKind::Ident) {
                        out.push(name.text.clone());
                    }
                    break;
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Is the call at token `k` of file `fi` preceded (in its enclosing fn
/// body) by an `is_x86_feature_detected` check?
fn detected_before(ctx: &Context, index: &ItemIndex, fi: usize, k: usize) -> bool {
    let Some(item) = index
        .fns
        .iter()
        .filter(|f| f.file == fi)
        .filter(|f| f.body.is_some_and(|(b0, b1)| b0 <= k && k < b1))
        .min_by_key(|f| f.body.map(|(b0, b1)| b1 - b0).unwrap_or(usize::MAX))
    else {
        return false;
    };
    let Some((b0, _)) = item.body else {
        return false;
    };
    let toks = &ctx.files[fi].tokens;
    (b0..k).any(|m| toks[m].is_ident("is_x86_feature_detected"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        UnsafeContract.run(&ctx).findings
    }

    #[test]
    fn unsafe_without_safety_comment_is_an_error() {
        let f = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn f(xs: &[f32]) -> f32 {\n\
                 unsafe { *xs.as_ptr() }\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
        assert!(f[0].message.contains("SAFETY"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_satisfies_the_contract() {
        let f = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn f(xs: &[f32]) -> f32 {\n\
                 // SAFETY: xs is non-empty by the caller's contract.\n\
                 #[allow(unsafe_code)]\n\
                 unsafe { *xs.as_ptr() }\n\
             }\n\
             pub fn g(xs: &[f32]) -> f32 {\n\
                 unsafe { *xs.as_ptr() } // SAFETY: same contract as f.\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn real_code_between_comment_and_unsafe_breaks_the_window() {
        let f = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn f(xs: &[f32]) -> f32 {\n\
                 // SAFETY: stale comment about some other block.\n\
                 let n = xs.len();\n\
                 unsafe { *xs.as_ptr().add(n - 1) }\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn target_feature_call_outside_detection_is_an_error() {
        let f = run_on(&[(
            "crates/nn/src/x.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             pub fn kernel_avx2(xs: &mut [f32]) { xs[0] += 1.0; }\n\
             pub fn good(xs: &mut [f32]) {\n\
                 if std::arch::is_x86_feature_detected!(\"avx2\") {\n\
                     // SAFETY: AVX2 verified at runtime on the line above.\n\
                     unsafe { return kernel_avx2(xs); }\n\
                 }\n\
             }\n\
             pub fn bad(xs: &mut [f32]) {\n\
                 // SAFETY: trust me, the build machine has AVX2.\n\
                 unsafe { kernel_avx2(xs) }\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("kernel_avx2"));
        assert!(f[0].message.contains("is_x86_feature_detected"));
    }

    #[test]
    fn unchecked_ops_and_raw_casts_outside_blessed_file_are_errors() {
        let f = run_on(&[
            (
                "crates/ml/src/x.rs",
                "pub fn f(xs: &[f32]) -> f32 {\n\
                     // SAFETY: index checked by caller.\n\
                     unsafe { *xs.get_unchecked(0) }\n\
                 }\n\
                 pub fn g(x: &f32) -> u32 {\n\
                     let p = x as *const f32 as *const u32;\n\
                     // SAFETY: same layout.\n\
                     unsafe { *p }\n\
                 }\n",
            ),
            (
                "crates/nn/src/tensor32.rs",
                "pub fn blessed(xs: &[f32]) -> f32 {\n\
                     // SAFETY: kernel contract pins xs length.\n\
                     unsafe { *xs.get_unchecked(0) }\n\
                 }\n",
            ),
        ]);
        let unchecked: Vec<&Finding> = f
            .iter()
            .filter(|x| x.message.contains("get_unchecked"))
            .collect();
        assert_eq!(unchecked.len(), 1, "{f:?}");
        assert_eq!(unchecked[0].path, "crates/ml/src/x.rs");
        assert!(
            f.iter().any(|x| x.message.contains("raw-pointer cast")),
            "{f:?}"
        );
    }

    #[test]
    fn allow_comment_suppresses_and_needs_a_reason() {
        let f = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn f(xs: &[f32]) -> f32 {\n\
                 // lint: allow(unsafe-contract) ffi contract documented in DESIGN.md\n\
                 unsafe { *xs.as_ptr() }\n\
             }\n\
             pub fn g(xs: &[f32]) -> f32 {\n\
                 // lint: allow(unsafe-contract)\n\
                 unsafe { *xs.as_ptr() }\n\
             }\n",
        )]);
        let a13: Vec<&Finding> = f.iter().filter(|x| x.rule == "A13").collect();
        assert_eq!(a13.len(), 1, "reasonless allow does not suppress: {f:?}");
        let misuses: Vec<&Finding> = f.iter().filter(|x| x.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{f:?}");
    }
}
