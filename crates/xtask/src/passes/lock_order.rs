//! A7 — lock acquisition order.
//!
//! Builds the global lock-order graph from the [`crate::lockmodel`]
//! regions: an edge `L1 → L2` whenever `L2` is acquired while an `L1`
//! region is open, either directly in the same body or transitively
//! through a call made inside the region. Any cycle in that graph is a
//! potential deadlock — two threads taking the group's locks in
//! different orders can each end up waiting on the other — and is
//! reported as an **Error** carrying every acquisition edge in the
//! cycle, so both chains are visible at the fix site. A self-edge
//! (`L → L`) is re-entrant acquisition of a non-reentrant std lock,
//! which deadlocks a single thread, and is reported the same way.
//!
//! The full graph (locks, order edges, condvar associations) is emitted
//! as the `lockgraph.dot` artifact, written to `docs/lockgraph.dot` by
//! `analyze --emit-lockgraph`.
//!
//! Fix by restructuring to a single global acquisition order (or by
//! narrowing one region so the locks are never held together); a
//! deliberate exception needs `// lint: allow(lock-order) <reason>`.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lockmodel::LockModel;

pub struct LockOrder;

impl Pass for LockOrder {
    fn id(&self) -> &'static str {
        "A7"
    }

    fn description(&self) -> &'static str {
        "lock-order: cycles (and re-entrant self-edges) in the global \
         lock-acquisition-order graph built from the lock-region model"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let model = LockModel::build(ctx, &graph);
        out.artifacts
            .push(("lockgraph.dot".to_string(), model.to_dot()));

        for group in model.cycles() {
            let Some(first) = group.first() else {
                continue;
            };
            let mut locks: Vec<&str> = group
                .iter()
                .flat_map(|e| [e.from.as_str(), e.to.as_str()])
                .collect();
            locks.sort_unstable();
            locks.dedup();
            let chains: Vec<String> = group
                .iter()
                .map(|e| {
                    let via = match &e.via {
                        Some(callee) => format!(" via `{callee}`"),
                        None => String::new(),
                    };
                    format!(
                        "`{}` → `{}` in `{}`{via} ({}:{})",
                        e.from, e.to, e.fn_disp, e.path, e.line
                    )
                })
                .collect();
            let message = if locks.len() == 1 {
                format!(
                    "re-entrant acquisition of `{}` — a std lock deadlocks when \
                     re-taken by its own thread: {}; drop the guard before the \
                     inner call or pass it down, or annotate \
                     `// lint: allow(lock-order) <reason>`",
                    locks[0],
                    chains.join("; ")
                )
            } else {
                format!(
                    "lock-order cycle between {} — threads taking these locks in \
                     different orders can deadlock: {}; pick one global order \
                     (or narrow a region), or annotate \
                     `// lint: allow(lock-order) <reason>`",
                    locks
                        .iter()
                        .map(|l| format!("`{l}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    chains.join("; ")
                )
            };
            out.findings.push(Finding {
                rule: "A7",
                key: "lock-order",
                severity: Severity::Error,
                path: first.path.clone(),
                line: first.line,
                message,
            });
        }

        // Allow-comment suppression on the reported line, per file.
        for file in &ctx.files {
            let (allowed, missing) = file.source.allows("lock-order");
            out.findings
                .retain(|f| !(f.path == file.source.path && allowed.contains(&f.line)));
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(lock-order) without a reason — state why this \
                              acquisition order cannot deadlock"
                        .into(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        LockOrder.run(&ctx)
    }

    const CYCLE: &str = "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                         impl S {\n\
                             pub fn one(&self) {\n\
                                 let g = self.a.lock();\n\
                                 let h = self.b.lock();\n\
                             }\n\
                             pub fn two(&self) {\n\
                                 let h = self.b.lock();\n\
                                 let g = self.a.lock();\n\
                             }\n\
                         }\n";

    #[test]
    fn a_deliberate_cycle_is_an_error_with_both_chains() {
        let out = run_on(&[("crates/serving/src/x.rs", CYCLE)]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A7").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert_eq!(errs[0].severity, Severity::Error);
        assert!(errs[0]
            .message
            .contains("`S.a` → `S.b` in `serving::S::one`"));
        assert!(errs[0]
            .message
            .contains("`S.b` → `S.a` in `serving::S::two`"));
    }

    #[test]
    fn the_fixed_ordering_is_clean_and_emits_the_lockgraph() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
                 pub fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 pub fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let (name, dot) = &out.artifacts[0];
        assert_eq!(name, "lockgraph.dot");
        assert!(dot.contains("digraph lockgraph"));
        assert!(dot.contains("\"S.a\" -> \"S.b\""));
    }

    #[test]
    fn transitive_cycles_through_calls_are_detected() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
                 pub fn one(&self) { let g = self.a.lock(); self.take_b(); }\n\
                 pub fn take_b(&self) { let h = self.b.lock(); }\n\
                 pub fn two(&self) { let h = self.b.lock(); self.take_a(); }\n\
                 pub fn take_a(&self) { let g = self.a.lock(); }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A7").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("via `serving::S::take_b`"));
        assert!(errs[0].message.contains("via `serving::S::take_a`"));
    }

    #[test]
    fn reentrant_self_acquisition_is_its_own_error() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub struct S { a: Mutex<u8> }\n\
             impl S {\n\
                 pub fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
                 pub fn inner(&self) { let g = self.a.lock(); }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A7").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("re-entrant acquisition of `S.a`"));
    }

    #[test]
    fn allow_comment_suppresses_and_bare_allow_is_flagged() {
        // The finding lands on the line of the group's first (sorted)
        // edge's inner acquisition.
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
                 pub fn one(&self) {\n\
                     let g = self.a.lock();\n\
                     // lint: allow(lock-order) b is only ever tried, never waited on\n\
                     let h = self.b.lock();\n\
                 }\n\
                 pub fn two(&self) {\n\
                     let h = self.b.lock();\n\
                     // lint: allow(lock-order)\n\
                     let g = self.a.lock();\n\
                 }\n\
             }\n",
        )]);
        let a7: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A7").collect();
        assert!(
            a7.is_empty(),
            "reasoned allow on the reported line suppresses: {a7:?}"
        );
        let misuses: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{:?}", out.findings);
    }
}
