//! A2 — determinism analysis.
//!
//! Reproduction runs must be bit-replayable from a seed. Three classes of
//! nondeterminism are flagged in the model crates (`core`, `ml`,
//! `diffusion`, `nn`, `socialsim`) and in the prediction server
//! (`serving`):
//!
//! 1. **Unseeded RNG construction** (`from_entropy`, `thread_rng`,
//!    `rand::random`) — error. Every RNG must derive from a config seed.
//! 2. **Iteration over `HashMap`/`HashSet`** — warning. Iteration order
//!    is hasher-dependent and (with a randomized hasher, or across
//!    std versions) run-dependent; when it feeds training order or metric
//!    aggregation the run stops being replayable. Use `BTreeMap`/
//!    `BTreeSet` or sort before iterating.
//! 3. **Wall-clock reads** (`Instant::now`, `SystemTime::now`) — warning.
//!    Timing belongs in the bench crate, not in result paths.
//! 4. **Ad-hoc thread spawning** (`thread::spawn`, `thread::scope`,
//!    `crossbeam::scope`) outside the blessed `nn::par` module — error.
//!    All data-parallel work must route through the `nn::par` splitters
//!    so the bit-identity contract (disjoint output partitions, serial
//!    reductions) is enforced in one audited place.
//!
//! Detection of (2) is two-phase per file: collect every identifier
//! declared with a `HashMap`/`HashSet` type (let bindings and struct
//! fields), then flag token sequences that iterate one of them (`for …
//! in … x`, `x.iter()`, `.keys()`, `.values()`, `.values_mut()`,
//! `.drain()`, `.into_iter()`). Keyed lookups (`get`/`insert`/
//! `contains`) are order-independent and stay legal.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::lexer::{TokKind, Token};
use std::collections::BTreeSet;

/// Crates exempt from the determinism pass: the tooling itself, the
/// bench harness (reading the wall clock is its job), the root package
/// (re-exports only) and the corpus pipeline (`text` sorts hash-built
/// vocabularies at its boundary). Every other workspace member —
/// including `serving`, whose *results* must stay deterministic
/// (batching and worker count only affect latency), and any crate
/// added after this list was written — is held to the
/// seeded-RNG/ordered-iteration bar of the model crates.
const EXEMPT: [&str; 4] = ["bench", "root", "text", "xtask"];

/// Iterating method names on hash collections that expose hasher order.
const ITER_METHODS: [&str; 6] = ["iter", "keys", "values", "values_mut", "drain", "into_iter"];

/// Files allowed to spawn threads: the single blessed work-splitting
/// entry point. Everything else must build on `nn::par`.
const THREADING_ALLOWED: [&str; 1] = ["crates/nn/src/par.rs"];

pub struct Determinism;

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        "A2"
    }

    fn description(&self) -> &'static str {
        "determinism: unseeded RNGs, order-unstable HashMap/HashSet \
         iteration, wall-clock reads in result paths"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        for file in &ctx.files {
            if EXEMPT.contains(&file.crate_name()) {
                continue;
            }
            let (allowed, _) = file.source.allows("determinism");
            let mut findings = Vec::new();
            check_rng_and_clock(file, &mut findings);
            check_hash_iteration(file, &mut findings);
            check_adhoc_threading(file, &mut findings);
            findings.retain(|f| !f.severity.is_failing() || !allowed.contains(&f.line));
            out.findings.extend(findings);
        }
        out
    }
}

fn finding(path: &str, line: usize, severity: Severity, message: String) -> Finding {
    Finding {
        rule: "A2",
        key: "determinism",
        severity,
        path: path.to_string(),
        line,
        message,
    }
}

/// Phase 1 of (2): identifiers declared as hash collections.
fn hash_decls(tokens: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (j, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk left past the type-expression prefix (`:`, `=`,
        // `std::collections::`, wrapper generics like `Mutex<`) to the
        // declared name: `let <name> [: ty] = …HashMap…` or the struct
        // field / binding `name : …HashMap<…`.
        let mut k = j;
        while k > 0 {
            let p = &tokens[k - 1];
            if p.is_punct("::")
                || p.is_punct("<")
                || p.is_punct("(")
                || (p.kind == TokKind::Ident
                    && !matches!(p.text.as_str(), "let" | "mut" | "pub" | "fn"))
            {
                k -= 1;
            } else {
                break;
            }
        }
        // Now expect `… name :` or `… name =` just before position k.
        if k >= 2 && (tokens[k - 1].is_punct(":") || tokens[k - 1].is_punct("=")) {
            let name = &tokens[k - 2];
            if name.kind == TokKind::Ident {
                out.insert(name.text.clone());
            }
        }
    }
    out
}

/// Unseeded RNG constructions and wall-clock reads.
fn check_rng_and_clock(file: &super::AnalyzedFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let path = &file.source.path;
    for (j, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "from_entropy" | "thread_rng" => findings.push(finding(
                path,
                t.line,
                Severity::Error,
                format!(
                    "unseeded RNG construction `{}`: every RNG in the model crates \
                     must be seeded from the run config so experiments replay \
                     bit-identically",
                    t.text
                ),
            )),
            "random" if j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].is_ident("rand") => {
                findings.push(finding(
                    path,
                    t.line,
                    Severity::Error,
                    "`rand::random` draws from the thread-local entropy RNG; seed a \
                     StdRng from the run config instead"
                        .into(),
                ))
            }
            "now"
                if j >= 2
                    && toks[j - 1].is_punct("::")
                    && matches!(toks[j - 2].text.as_str(), "Instant" | "SystemTime") =>
            {
                findings.push(finding(
                    path,
                    t.line,
                    Severity::Warning,
                    format!(
                        "wall-clock read `{}::now` in a model crate; timing belongs in \
                         the bench crate, and results must not depend on it",
                        toks[j - 2].text
                    ),
                ))
            }
            _ => {}
        }
    }
}

/// Ad-hoc thread spawning outside the blessed `nn::par` module.
fn check_adhoc_threading(file: &super::AnalyzedFile, findings: &mut Vec<Finding>) {
    let path = &file.source.path;
    if THREADING_ALLOWED.iter().any(|p| path.ends_with(p)) {
        return;
    }
    let toks = &file.tokens;
    for (j, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "spawn" | "scope")
            && j >= 2
            && toks[j - 1].is_punct("::")
            && matches!(toks[j - 2].text.as_str(), "thread" | "crossbeam")
        {
            findings.push(finding(
                path,
                t.line,
                Severity::Error,
                format!(
                    "ad-hoc `{}::{}` outside nn::par: data-parallel work must go \
                     through the nn::par splitters so the bit-identity contract \
                     (disjoint output partitions, serial reductions) is enforced \
                     in one audited place",
                    toks[j - 2].text,
                    t.text
                ),
            ));
        }
    }
}

/// Hash-collection iteration sites.
fn check_hash_iteration(file: &super::AnalyzedFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let path = &file.source.path;
    let decls = hash_decls(toks);
    if decls.is_empty() {
        return;
    }
    let mut reported: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut report = |name: &str, how: &str, line: usize, findings: &mut Vec<Finding>| {
        if reported.insert((line, name.to_string())) {
            findings.push(finding(
                path,
                line,
                Severity::Warning,
                format!(
                    "iteration over hash collection `{name}` ({how}): HashMap/HashSet \
                     order is hasher-dependent, which breaks replayability when it \
                     feeds training order or aggregation; use BTreeMap/BTreeSet or \
                     sort first"
                ),
            ));
        }
    };
    for (j, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        // `x.iter()` / `x.values()` … on a declared hash collection; also
        // through one field hop (`self.x.iter()`).
        if ITER_METHODS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            && j >= 2
            && toks[j - 1].is_punct(".")
            && toks[j - 2].kind == TokKind::Ident
            && decls.contains(&toks[j - 2].text)
        {
            report(
                &toks[j - 2].text,
                &format!(".{}()", t.text),
                t.line,
                findings,
            );
        }
        // `for <pat> in [&[mut]] x` — the loop target is the last path
        // segment before `{`; flag when it is a declared hash collection.
        if t.is_ident("for") {
            let Some(in_pos) = (j + 1..toks.len().min(j + 24)).find(|&k| toks[k].is_ident("in"))
            else {
                continue;
            };
            let Some(body) = (in_pos + 1..toks.len()).find(|&k| toks[k].is_punct("{")) else {
                continue;
            };
            // Walk the loop-target expression; a bare `name` or trailing
            // `.name` that is a declared hash collection is a finding
            // (method calls like `.iter()` are caught above; calls ending
            // in `()` here, e.g. `.filter(…)`, are iterator-producing and
            // skipped).
            if toks[body - 1].kind == TokKind::Ident && decls.contains(&toks[body - 1].text) {
                report(
                    &toks[body - 1].text,
                    "for-loop",
                    toks[body - 1].line,
                    findings,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let source = SourceFile::parse(path, src);
        let tokens = lex(&source);
        let ctx = Context {
            files: vec![AnalyzedFile { source, tokens }],
        };
        Determinism.run(&ctx).findings
    }

    #[test]
    fn unseeded_rng_is_an_error() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f() { let mut rng = StdRng::from_entropy(); rng.gen::<f64>(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
        assert!(f[0].message.contains("from_entropy"));
    }

    #[test]
    fn thread_rng_and_rand_random_are_errors() {
        let f = run_on(
            "crates/diffusion/src/x.rs",
            "fn f() -> f64 { let _ = rand::thread_rng(); rand::random() }\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn seeded_rng_is_clean() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hashmap_value_iteration_is_flagged() {
        let f = run_on(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n\
             fn f() {\n\
                 let mut by_author: HashMap<u32, Vec<f64>> = HashMap::new();\n\
                 for v in by_author.values_mut() { v.sort_by(|a, b| a.total_cmp(b)); }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("by_author"));
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn hashset_for_loop_is_flagged() {
        let f = run_on(
            "crates/socialsim/src/x.rs",
            "fn f() {\n\
                 let mut participant = std::collections::HashSet::new();\n\
                 participant.insert(1u32);\n\
                 for p in &participant { let _ = p; }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("participant"));
    }

    #[test]
    fn keyed_lookup_is_clean() {
        let f = run_on(
            "crates/diffusion/src/x.rs",
            "fn f() {\n\
                 let times: std::collections::HashMap<u32, f64> = make();\n\
                 let _ = times.get(&1).copied();\n\
                 times.contains_key(&2);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn btree_collections_are_clean() {
        let f = run_on(
            "crates/core/src/x.rs",
            "fn f() {\n\
                 let mut m: std::collections::BTreeMap<u32, f64> = Default::default();\n\
                 for v in m.values() { let _ = v; }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_read_is_a_warning() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn out_of_scope_crates_and_tests_are_skipped() {
        let f = run_on(
            "crates/bench/src/lib.rs",
            "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let f = run_on(
            "crates/ml/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = StdRng::from_entropy(); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_new_member_crates_default_into_scope() {
        // Exclusion-based scoping: a crate added to the workspace after
        // this pass was written is covered without touching EXEMPT.
        let f = run_on(
            "crates/brandnew/src/lib.rs",
            "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(EXEMPT, ["bench", "root", "text", "xtask"]);
    }

    #[test]
    fn adhoc_thread_spawn_is_an_error() {
        let f = run_on(
            "crates/core/src/x.rs",
            "fn f() {\n\
                 crossbeam::scope(|s| { s.spawn(|_| {}); }).unwrap();\n\
                 let h = std::thread::spawn(|| 1);\n\
                 let _ = h.join();\n\
             }\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.severity == Severity::Error));
        assert!(f[0].message.contains("nn::par"));
    }

    #[test]
    fn blessed_par_module_may_spawn() {
        let f = run_on(
            "crates/nn/src/par.rs",
            "fn f() { crossbeam::scope(|s| { s.spawn(|_| {}); }).unwrap(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn serving_crate_is_in_scope() {
        // The server's only sanctioned clock use is its batching
        // deadline, which must carry an allow-comment; a bare clock
        // read or unseeded RNG in `serving` is flagged like in the
        // model crates.
        let f = run_on(
            "crates/serving/src/server.rs",
            "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Warning);
        let f = run_on(
            "crates/serving/src/server.rs",
            "fn f() {\n\
                 // lint: allow(determinism) batching deadline is latency-only\n\
                 let deadline = std::time::Instant::now(); let _ = deadline;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f() {\n\
                 // lint: allow(determinism) diagnostic-only timing, not in results\n\
                 let t = std::time::Instant::now(); let _ = t;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
