//! A6 — discarded `Result` detection, workspace-wide.
//!
//! A dropped `Result` silently swallows I/O and fit errors; every
//! fallible call must be propagated (`?`), matched, or logged with
//! context. Two complementary detectors:
//!
//! 1. **Indexed calls**: every resolved call-graph edge whose callee
//!    declares `-> Result<...>` is checked at the call site. Discards are
//!    `let _ = f(...)` and bare statement position `f(...);`; a trailing
//!    `?`, `.ok()`, any other method chain, or use in a larger
//!    expression counts as consumed.
//! 2. **Known-fallible std calls** under `let _ =`: `std::fs` mutations
//!    (`write`, `create_dir_all`, `remove_dir_all`, `remove_file`,
//!    `copy`, `rename`), `write!`/`writeln!`, and `.flush()`/
//!    `.write_all()` — the std surface this workspace actually touches.
//!
//! Findings are **Warning** severity with the allow key
//! `discard-result`; test code is exempt (tests legitimately discard,
//! e.g. pre-cleanup `remove_dir_all`).

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lexer::{matching_close, TokKind, Token};

pub struct ResultDiscard;

/// `let _ = <fallible std call>` patterns: path tails that return
/// `Result` and matter when dropped.
const STD_FALLIBLE: [&str; 6] = [
    "write",
    "create_dir_all",
    "remove_dir_all",
    "remove_file",
    "copy",
    "rename",
];

impl Pass for ResultDiscard {
    fn id(&self) -> &'static str {
        "A6"
    }

    fn description(&self) -> &'static str {
        "discarded Result: `let _ =` or bare-statement calls to fallible \
         APIs, workspace-wide"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let mut findings: Vec<Finding> = Vec::new();

        // (1) Resolved calls to workspace fns that return Result.
        for e in &graph.edges {
            let callee = &graph.index.fns[e.callee];
            if !callee.returns_result {
                continue;
            }
            let caller = &graph.index.fns[e.caller];
            if caller.in_test {
                continue;
            }
            let toks = &ctx.files[caller.file].tokens;
            if let Some(how) = discard_kind(toks, e.site) {
                findings.push(finding(
                    &caller.path,
                    e.line,
                    format!(
                        "`Result` from `{}` is {how} in `{}`; propagate with `?`, \
                         match it, or log the error with context",
                        callee.display(),
                        caller.display()
                    ),
                ));
            }
        }

        // (2) `let _ =` over known-fallible std calls, every file.
        for file in &ctx.files {
            let toks = &file.tokens;
            for k in 0..toks.len() {
                if toks[k].in_test || !toks[k].is_ident("let") {
                    continue;
                }
                if !(toks.get(k + 1).is_some_and(|t| t.is_ident("_"))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct("=")))
                {
                    continue;
                }
                // Expression tokens up to `;` at depth 0.
                let mut e = k + 3;
                let mut depth = 0i32;
                let mut hit: Option<String> = None;
                while e < toks.len() {
                    match toks[e].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        "?" => {
                            hit = None;
                            break;
                        }
                        name if toks[e].kind == TokKind::Ident => {
                            let called = toks
                                .get(e + 1)
                                .is_some_and(|n| n.is_punct("(") || n.is_punct("!"));
                            let pathy =
                                e > 0 && (toks[e - 1].is_punct("::") || toks[e - 1].is_punct("."));
                            let fallible = (STD_FALLIBLE.contains(&name) && pathy)
                                || matches!(name, "writeln" | "flush" | "write_all")
                                || (name == "write" && !pathy);
                            if called && fallible && hit.is_none() {
                                hit = Some(name.to_string());
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                if let Some(name) = hit {
                    findings.push(finding(
                        &file.source.path,
                        toks[k].line,
                        format!(
                            "`let _ =` drops the `Result` of `{name}`; propagate with \
                             `?`, match it, or log the error with context"
                        ),
                    ));
                }
            }
        }

        // Dedup (a `let _ = workspace_fallible()` matches both detectors).
        findings.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
        findings.dedup_by(|a, b| a.path == b.path && a.line == b.line);
        for file in &ctx.files {
            let (allowed, _) = file.source.allows("discard-result");
            findings.retain(|f| f.path != file.source.path || !allowed.contains(&f.line));
        }
        out.findings = findings;
        out
    }
}

fn finding(path: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: "A6",
        key: "discard-result",
        severity: Severity::Warning,
        path: path.to_string(),
        line,
        message,
    }
}

/// Is the call whose name token sits at `site` discarded? Returns a
/// description (`"discarded with let _ ="` / `"ignored as a statement"`)
/// or `None` when the value is consumed.
fn discard_kind(toks: &[Token], site: usize) -> Option<&'static str> {
    let open = site + 1;
    if !toks.get(open)?.is_punct("(") {
        return None;
    }
    let close = matching_close(toks, open)?;
    match toks.get(close + 1).map(|t| t.text.as_str()) {
        Some(";") => {}
        _ => return None, // `?`, chained method, operator, arg position…
    }
    // Walk left over the receiver chain (`a.b.c(` / `mod::f(`): simple
    // ident links only — a `)`/`]` in the chain means the value feeds a
    // larger expression we do not model, so stay silent.
    let mut l = site;
    while l >= 2
        && (toks[l - 1].is_punct(".") || toks[l - 1].is_punct("::"))
        && toks[l - 2].kind == TokKind::Ident
    {
        l -= 2;
    }
    if l >= 1 && (toks[l - 1].is_punct(".") || toks[l - 1].is_punct("::")) {
        return None;
    }
    match l.checked_sub(1).map(|i| &toks[i]) {
        None => Some("ignored as a statement"),
        Some(p) if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") => {
            Some("ignored as a statement")
        }
        Some(p)
            if p.is_punct("=")
                && l >= 3
                && toks[l - 2].is_ident("_")
                && toks[l - 3].is_ident("let") =>
        {
            Some("discarded with `let _ =`")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        ResultDiscard.run(&ctx).findings
    }

    const FALLIBLE: &str = "pub fn save(v: f64) -> Result<(), String> { Ok(()) }\n";

    #[test]
    fn let_underscore_on_workspace_result_is_flagged() {
        let f = run_on(&[(
            "crates/core/src/x.rs",
            &format!("{FALLIBLE}pub fn run() {{ let _ = save(1.0); }}\n"),
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("core::save"));
        assert!(f[0].message.contains("let _ ="));
    }

    #[test]
    fn statement_position_result_is_flagged() {
        let f = run_on(&[(
            "crates/core/src/x.rs",
            &format!("{FALLIBLE}pub fn run() {{ save(1.0); }}\n"),
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ignored as a statement"));
    }

    #[test]
    fn propagated_matched_and_chained_results_are_clean() {
        let f = run_on(&[(
            "crates/core/src/x.rs",
            &format!(
                "{FALLIBLE}\
                 pub fn run() -> Result<(), String> {{\n\
                     save(1.0)?;\n\
                     if save(2.0).is_err() {{ return Err(\"x\".into()); }}\n\
                     let r = save(3.0);\n\
                     r\n\
                 }}\n"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn std_fs_and_write_macros_under_let_underscore_are_flagged() {
        let f = run_on(&[(
            "crates/xtask/src/x.rs",
            "pub fn run(out: &mut String) {\n\
                 let _ = std::fs::write(\"p\", \"c\");\n\
                 let _ = writeln!(out, \"row\");\n\
             }\n",
        )]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("write"));
        assert!(f[1].message.contains("writeln"));
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let f = run_on(&[(
            "crates/core/src/x.rs",
            &format!(
                "{FALLIBLE}\
                 // lint: allow(discard-result) best-effort cache warm, failure is benign\n\
                 pub fn warm() {{ let _ = save(0.0); }}\n\
                 #[cfg(test)]\n\
                 mod tests {{\n\
                     fn t() {{ let _ = std::fs::remove_dir_all(\"tmp\"); }}\n\
                 }}\n"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_result_discards_are_clean() {
        let f = run_on(&[(
            "crates/core/src/x.rs",
            "pub fn grad(v: f64) -> f64 { v }\n\
             pub fn run() { let _ = grad(1.0); grad(2.0); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
