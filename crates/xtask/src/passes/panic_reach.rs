//! A4 — panic reachability.
//!
//! The serving north star requires the training/inference hot path to be
//! panic-free. This pass builds the workspace call graph
//! ([`crate::callgraph`]), takes the hot-path root set (`Retina::
//! {forward,backward}`, `Trainer::fit`, the `nn::par` entry points, the
//! layer step functions, `Classifier::predict*`), and reports every
//! panic source syntactically present in a reachable fn body:
//!
//! - `.unwrap()` / `.expect(...)` and `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` — **Error**. Fix by restructuring (carry the value
//!   instead of re-looking it up, encode the invariant in the type) or
//!   annotate a deliberate API-contract panic with
//!   `// lint: allow(panic-reach) <reason>`.
//! - Indexing (`x[i]`) in a reachable fn whose body carries no
//!   `assert!`/`debug_assert!` shape guard — **Warning** (one per
//!   receiver per fn). These are grandfathered via the baseline and
//!   burned down over time.
//!
//! `assert!`-style argument validation is *not* flagged: input asserts
//! are the documented API contract, panicking early with a message
//! rather than corrupting state deep in a kernel.
//!
//! Every finding carries the shortest call chain from a root, so the fix
//! site is obvious without re-deriving the graph by hand. The pass also
//! emits the `callgraph.dot` artifact (the hot-path subgraph) written to
//! `docs/callgraph.dot` by `analyze --emit-callgraph`.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use std::collections::BTreeSet;

pub struct PanicReach;

impl Pass for PanicReach {
    fn id(&self) -> &'static str {
        "A4"
    }

    fn description(&self) -> &'static str {
        "panic-reachability: unwrap/expect/panic! and unguarded indexing \
         in functions reachable from the hot-path roots, with the \
         shortest call chain"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let roots = graph.hot_roots();
        let reach = graph.reachable(&roots);
        out.artifacts
            .push(("callgraph.dot".to_string(), graph.to_dot(&roots, &reach)));

        for (&fid, chain) in &reach {
            let item = &graph.index.fns[fid];
            if item.in_test {
                continue;
            }
            let Some((b0, b1)) = item.body else {
                continue;
            };
            let file = &ctx.files[item.file];
            let toks = &file.tokens;
            let nested: Vec<(usize, usize)> = graph
                .index
                .fns
                .iter()
                .enumerate()
                .filter(|&(i, f)| i != fid && f.file == item.file)
                .filter_map(|(_, f)| f.body)
                .filter(|&(n0, n1)| n0 > b0 && n1 < b1)
                .collect();
            let chain_str = graph.chain_display(chain);
            let has_guard = (b0..b1).any(|k| {
                toks[k].kind == TokKind::Ident
                    && matches!(
                        toks[k].text.as_str(),
                        "assert" | "assert_eq" | "assert_ne" | "debug_assert" | "debug_assert_eq"
                    )
            });
            let mut findings = Vec::new();
            let mut indexed: BTreeSet<String> = BTreeSet::new();
            let mut k = b0;
            'scan: while k < b1 {
                for &(n0, n1) in &nested {
                    if k >= n0 && k < n1 {
                        k = n1;
                        continue 'scan;
                    }
                }
                let t = &toks[k];
                if t.kind != TokKind::Ident {
                    k += 1;
                    continue;
                }
                let next = toks.get(k + 1);
                match t.text.as_str() {
                    "unwrap" | "expect"
                        if k > 0
                            && toks[k - 1].is_punct(".")
                            && next.is_some_and(|n| n.is_punct("(")) =>
                    {
                        findings.push(finding(
                            &file.source.path,
                            t.line,
                            Severity::Error,
                            format!(
                                "hot-path panic source `.{}()` in `{}`, reachable via \
                                 {chain_str}; restructure to be infallible or annotate \
                                 `// lint: allow(panic-reach) <reason>`",
                                t.text,
                                item.display()
                            ),
                        ));
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if next.is_some_and(|n| n.is_punct("!")) =>
                    {
                        findings.push(finding(
                            &file.source.path,
                            t.line,
                            Severity::Error,
                            format!(
                                "hot-path panic source `{}!` in `{}`, reachable via \
                                 {chain_str}; restructure to be infallible or annotate \
                                 `// lint: allow(panic-reach) <reason>`",
                                t.text,
                                item.display()
                            ),
                        ));
                    }
                    _ if !has_guard
                        && next.is_some_and(|n| n.is_punct("["))
                        && indexed.insert(t.text.clone()) =>
                    {
                        findings.push(finding(
                            &file.source.path,
                            t.line,
                            Severity::Warning,
                            format!(
                                "unguarded indexing `{}[…]` in `{}` (no assert/debug_assert \
                                 in the body), reachable via {chain_str}; add a shape guard \
                                 or use checked accessors",
                                t.text,
                                item.display()
                            ),
                        ));
                    }
                    _ => {}
                }
                k += 1;
            }
            let (allowed, _) = file.source.allows("panic-reach");
            findings.retain(|f| !allowed.contains(&f.line));
            out.findings.extend(findings);
        }

        // Satellite lint: every allow(panic-reach) must carry a reason.
        for file in &ctx.files {
            let (_, missing) = file.source.allows("panic-reach");
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(panic-reach) without a reason — state why this panic \
                              is acceptable on the hot path"
                        .into(),
                });
            }
        }
        out
    }
}

fn finding(path: &str, line: usize, severity: Severity, message: String) -> Finding {
    Finding {
        rule: "A4",
        key: "panic-reach",
        severity,
        path: path.to_string(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        PanicReach.run(&ctx)
    }

    const MODEL: &str = "pub struct Retina;\n\
                         impl Retina {\n\
                             pub fn forward(&mut self) { helper(); }\n\
                             pub fn backward(&mut self) {}\n\
                         }\n";

    #[test]
    fn unwrap_two_hops_from_a_root_is_an_error_with_the_chain() {
        let out = run_on(&[
            ("crates/core/src/retina.rs", MODEL),
            (
                "crates/core/src/util.rs",
                "pub fn helper() { deeper(); }\n\
                 pub fn deeper() { maybe().unwrap(); }\n\
                 pub fn maybe() -> Option<f64> { None }\n",
            ),
        ]);
        let errs: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains(".unwrap()"));
        assert!(
            errs[0]
                .message
                .contains("core::Retina::forward → core::helper → core::deeper"),
            "shortest chain printed: {}",
            errs[0].message
        );
    }

    #[test]
    fn unreachable_code_is_not_flagged() {
        let out = run_on(&[
            ("crates/core/src/retina.rs", MODEL),
            (
                "crates/core/src/util.rs",
                "pub fn helper() {}\n\
                 pub fn cold_path() { maybe().unwrap(); }\n\
                 pub fn maybe() -> Option<f64> { None }\n",
            ),
        ]);
        assert!(
            out.findings.iter().all(|f| !f.severity.is_failing()),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn panic_macros_in_roots_are_errors_and_asserts_are_not() {
        let out = run_on(&[(
            "crates/core/src/retina.rs",
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self, n: usize) {\n\
                     assert!(n > 0, \"validated input\");\n\
                     if n > 9 { panic!(\"boom\"); }\n\
                 }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("panic!"));
    }

    #[test]
    fn unguarded_indexing_is_a_warning_and_guarded_is_clean() {
        let out = run_on(&[(
            "crates/core/src/retina.rs",
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self, xs: &[f64]) -> f64 { xs[0] }\n\
                 pub fn backward(&mut self, xs: &[f64]) -> f64 {\n\
                     debug_assert!(!xs.is_empty());\n\
                     xs[0]\n\
                 }\n\
             }\n",
        )]);
        let warns: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .collect();
        assert_eq!(warns.len(), 1, "{:?}", out.findings);
        assert!(warns[0].message.contains("xs[…]"));
        assert!(warns[0].message.contains("forward"));
    }

    #[test]
    fn allow_comment_suppresses_and_bare_allow_is_flagged() {
        let out = run_on(&[(
            "crates/core/src/retina.rs",
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self) {\n\
                     // lint: allow(panic-reach) cache is seeded two lines up\n\
                     self.cache.as_ref().expect(\"seeded\");\n\
                     // lint: allow(panic-reach)\n\
                     self.other.unwrap();\n\
                 }\n\
             }\n",
        )]);
        let a4_errors: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.rule == "A4" && f.severity == Severity::Error)
            .collect();
        // The reasoned allow suppresses the expect; the reasonless one
        // does NOT suppress its unwrap.
        assert_eq!(a4_errors.len(), 1, "{:?}", out.findings);
        assert!(a4_errors[0].message.contains(".unwrap()"));
        let misuses: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{:?}", out.findings);
        assert!(misuses[0].message.contains("without a reason"));
    }

    #[test]
    fn emits_the_callgraph_artifact() {
        let out = run_on(&[("crates/core/src/retina.rs", MODEL)]);
        let (name, dot) = &out.artifacts[0];
        assert_eq!(name, "callgraph.dot");
        assert!(dot.contains("digraph callgraph"));
        assert!(dot.contains("core::Retina::forward"));
    }

    #[test]
    fn deterministic_output_across_runs() {
        let files = [
            ("crates/core/src/retina.rs", MODEL),
            (
                "crates/core/src/util.rs",
                "pub fn helper() { a(); b(); }\n\
                 pub fn a() { shared(); }\n\
                 pub fn b() { shared(); }\n\
                 pub fn shared() { maybe().unwrap(); }\n\
                 pub fn maybe() -> Option<f64> { None }\n",
            ),
        ];
        let one = run_on(&files);
        let two = run_on(&files);
        let msgs = |o: &PassOutput| {
            o.findings
                .iter()
                .map(|f| format!("{}:{} {}", f.path, f.line, f.message))
                .collect::<Vec<_>>()
        };
        assert_eq!(msgs(&one), msgs(&two));
        assert_eq!(one.artifacts, two.artifacts);
        // The tie between the equal-length chains through `a` and `b`
        // breaks the same (sorted) way every time.
        assert!(
            msgs(&one)[0].contains("core::a → core::shared"),
            "{:?}",
            msgs(&one)
        );
    }
}
