//! A8 — blocking calls under a lock.
//!
//! For every fn reachable from the serving hot path (every non-test fn
//! in `crates/serving/src/` plus the public `nn::par` entry points),
//! this pass intersects the call sites with the held-lock sets from the
//! [`crate::lockmodel`] — both locks acquired locally and locks held by
//! a caller across the call edge — and flags:
//!
//! - **Error**: a blocking call while any lock is held — channel
//!   `recv`/`recv_timeout`/`recv_deadline`, `JoinHandle`/`WorkerPool`
//!   `join`, `thread::sleep`, `File`/`fs` IO, print macros — or a
//!   `Condvar::wait*` while holding any lock *other than* the condvar's
//!   own mutex (the wait releases only its own mutex; everything else
//!   stays held for the full sleep).
//! - **Warning**: an allocation-shaped call (the A5 matcher) inside a
//!   lock region — it stretches the critical section and stalls every
//!   other thread on the queue lock.
//!
//! Suppression: `// lint: allow(lock-block) <reason>`.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::lockmodel::LockModel;
use std::collections::BTreeMap;

pub struct LockBlock;

impl Pass for LockBlock {
    fn id(&self) -> &'static str {
        "A8"
    }

    fn description(&self) -> &'static str {
        "blocking-under-lock: condvar waits, channel recv, join, \
         sleep/IO and alloc-shaped calls inside lock regions reachable \
         from the serving hot path"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let model = LockModel::build(ctx, &graph);
        let roots: Vec<usize> = graph
            .index
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.in_test
                    && f.body.is_some()
                    && (f.path.starts_with("crates/serving/src/")
                        || (f.is_pub && f.path.ends_with("crates/nn/src/par.rs")))
            })
            .map(|(i, _)| i)
            .collect();
        let reach = graph.reachable(&roots);
        let held = model.held_from(&graph, &roots);

        for (&fid, chain) in &reach {
            let item = &graph.index.fns[fid];
            if item.in_test {
                continue;
            }
            let Some((b0, b1)) = item.body else {
                continue;
            };
            let file = &ctx.files[item.file];
            let toks = &file.tokens;
            let nested: Vec<(usize, usize)> = graph
                .index
                .fns
                .iter()
                .enumerate()
                .filter(|&(i, f)| i != fid && f.file == item.file)
                .filter_map(|(_, f)| f.body)
                .filter(|&(n0, n1)| n0 > b0 && n1 < b1)
                .collect();
            let fl = &model.fns[fid];
            let entry = held.get(&fid);
            let chain_str = graph.chain_display(chain);
            // lock → human description of where it was acquired.
            let held_at = |k: usize| -> BTreeMap<String, String> {
                let mut m = BTreeMap::new();
                if let Some(e) = entry {
                    for (lock, h) in e {
                        m.insert(
                            lock.clone(),
                            format!("held by `{}`:{}", h.acquired_in, h.line),
                        );
                    }
                }
                for r in &fl.regions {
                    if r.contains(k) {
                        m.insert(r.lock.clone(), format!("acquired at line {}", r.line));
                    }
                }
                m
            };
            let describe = |m: &BTreeMap<String, String>| -> String {
                m.iter()
                    .map(|(l, w)| format!("`{l}` ({w})"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut findings = Vec::new();
            let mut push = |line: usize, severity: Severity, msg: String| {
                findings.push(Finding {
                    rule: "A8",
                    key: "lock-block",
                    severity,
                    path: file.source.path.clone(),
                    line,
                    message: msg,
                });
            };

            let mut k = b0;
            'scan: while k < b1 {
                for &(n0, n1) in &nested {
                    if k >= n0 && k < n1 {
                        k = n1;
                        continue 'scan;
                    }
                }
                let t = &toks[k];
                if t.kind != TokKind::Ident {
                    k += 1;
                    continue;
                }
                let dot_call = k > 0
                    && toks[k - 1].is_punct(".")
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("));
                if let Some(w) = fl.waits.iter().find(|w| w.tok == k) {
                    let mut locks = held_at(k);
                    // The condvar's own mutex is released by the wait.
                    if let Some(g) = &w.guard_arg {
                        if let Some(own) = fl
                            .regions
                            .iter()
                            .find(|r| r.guard.as_deref() == Some(g.as_str()) && r.contains(k))
                        {
                            locks.remove(&own.lock);
                        }
                    }
                    if !locks.is_empty() {
                        push(
                            t.line,
                            Severity::Error,
                            format!(
                                "`{}` in `{}` sleeps while holding {} — the wait releases \
                                 only its own mutex, everything else stays locked; \
                                 reachable via {chain_str}; drop the other guard(s) \
                                 first or annotate `// lint: allow(lock-block) <reason>`",
                                w.method,
                                item.display(),
                                describe(&locks)
                            ),
                        );
                    }
                    k += 1;
                    continue;
                }
                let blocking: Option<String> = if dot_call
                    && matches!(t.text.as_str(), "recv" | "recv_timeout" | "recv_deadline")
                {
                    Some(format!("channel `.{}()`", t.text))
                } else if dot_call && t.text == "join" && {
                    // Only a thread join when the receiver's type says so.
                    let recv_ty = k.checked_sub(2).and_then(|i| {
                        let r = &toks[i];
                        if r.kind != TokKind::Ident {
                            return None;
                        }
                        if k >= 4 && toks[k - 3].is_punct(".") && toks[k - 4].is_ident("self") {
                            item.owner
                                .as_ref()
                                .and_then(|o| graph.index.fields.get(&(o.clone(), r.text.clone())))
                                .cloned()
                        } else {
                            fl.hints.get(&r.text).cloned()
                        }
                    });
                    matches!(recv_ty.as_deref(), Some("JoinHandle" | "WorkerPool"))
                } {
                    Some("`.join()` on a thread handle".to_string())
                } else if t.text == "sleep"
                    && k >= 2
                    && toks[k - 1].is_punct("::")
                    && toks[k - 2].is_ident("thread")
                {
                    Some("`thread::sleep`".to_string())
                } else if k >= 2
                    && toks[k - 1].is_punct("::")
                    && matches!(toks[k - 2].text.as_str(), "File" | "fs")
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                {
                    Some(format!("file IO `{}::{}`", toks[k - 2].text, t.text))
                } else if matches!(t.text.as_str(), "print" | "println" | "eprint" | "eprintln")
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
                {
                    Some(format!("console IO `{}!`", t.text))
                } else {
                    None
                };
                if let Some(what) = blocking {
                    let locks = held_at(k);
                    if !locks.is_empty() {
                        push(
                            t.line,
                            Severity::Error,
                            format!(
                                "blocking call {what} in `{}` while holding {} — every \
                                 thread contending those locks stalls behind it; \
                                 reachable via {chain_str}; move the call outside the \
                                 region or annotate `// lint: allow(lock-block) <reason>`",
                                item.display(),
                                describe(&locks)
                            ),
                        );
                    }
                } else if let Some(call) = super::hot_alloc::alloc_shape(toks, k) {
                    let locks = held_at(k);
                    if !locks.is_empty() {
                        push(
                            t.line,
                            Severity::Warning,
                            format!(
                                "allocation-shaped call `{call}` in `{}` while holding {} \
                                 — it stretches the critical section; reachable via \
                                 {chain_str}; allocate before taking the lock or annotate \
                                 `// lint: allow(lock-block) <reason>`",
                                item.display(),
                                describe(&locks)
                            ),
                        );
                    }
                }
                k += 1;
            }
            let (allowed, _) = file.source.allows("lock-block");
            findings.retain(|f| !allowed.contains(&f.line));
            out.findings.extend(findings);
        }

        // Satellite lint: every allow(lock-block) must carry a reason.
        for file in &ctx.files {
            let (_, missing) = file.source.allows("lock-block");
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(lock-block) without a reason — state why blocking \
                              while holding this lock is acceptable"
                        .into(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        LockBlock.run(&ctx)
    }

    #[test]
    fn channel_recv_under_a_lock_is_an_error_and_fixed_form_is_clean() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8> }\n\
             impl S {\n\
                 pub fn drain(&self, rx: &Receiver) {\n\
                     let g = self.state.lock();\n\
                     let item = rx.recv();\n\
                 }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A8").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert_eq!(errs[0].severity, Severity::Error);
        assert!(errs[0].message.contains("channel `.recv()`"));
        assert!(errs[0].message.contains("`S.state`"));
        let fixed = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8> }\n\
             impl S {\n\
                 pub fn drain(&self, rx: &Receiver) {\n\
                     let item = rx.recv();\n\
                     let g = self.state.lock();\n\
                 }\n\
             }\n",
        )]);
        assert!(fixed.findings.is_empty(), "{:?}", fixed.findings);
    }

    #[test]
    fn blocking_in_a_callee_is_caught_through_the_held_set() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8> }\n\
             impl S {\n\
                 pub fn submit(&self) {\n\
                     let g = self.state.lock();\n\
                     self.log();\n\
                 }\n\
                 fn log(&self) { println!(\"depth\"); }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A8").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("console IO `println!`"));
        assert!(errs[0].message.contains("held by `serving::S::submit`"));
    }

    #[test]
    fn wait_holding_only_its_own_mutex_is_fine_foreign_lock_is_not() {
        let ok = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8>, work: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let mut state = self.state.lock();\n\
                     while *state == 0 { state = self.work.wait(state); }\n\
                 }\n\
             }\n",
        )]);
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        let bad = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8>, other: Mutex<u8>, work: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let extra = self.other.lock();\n\
                     let mut state = self.state.lock();\n\
                     while *state == 0 { state = self.work.wait(state); }\n\
                 }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = bad.findings.iter().filter(|f| f.rule == "A8").collect();
        assert_eq!(errs.len(), 1, "{:?}", bad.findings);
        assert!(errs[0].message.contains("sleeps while holding"));
        assert!(errs[0].message.contains("`S.other`"));
        assert!(
            !errs[0].message.contains("`S.state`"),
            "{}",
            errs[0].message
        );
    }

    #[test]
    fn join_sleep_and_alloc_under_lock_are_flagged() {
        let out = run_on(&[(
            "crates/nn/src/par.rs",
            "pub struct WorkerPool;\n\
             pub struct S { state: Mutex<u8> }\n\
             impl S {\n\
                 pub fn f(&self, pool: WorkerPool) {\n\
                     let g = self.state.lock();\n\
                     pool.join();\n\
                     thread::sleep(dur);\n\
                     let v = names.to_vec();\n\
                 }\n\
             }\n",
        )]);
        let a8: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A8").collect();
        assert_eq!(a8.len(), 3, "{:?}", out.findings);
        assert!(a8[0].message.contains("`.join()` on a thread handle"));
        assert_eq!(a8[0].severity, Severity::Error);
        assert!(a8[1].message.contains("`thread::sleep`"));
        assert!(a8[2].message.contains("`.to_vec()`"));
        assert_eq!(a8[2].severity, Severity::Warning);
    }

    #[test]
    fn unreachable_and_unlocked_blocking_calls_are_clean() {
        // A recv with no lock held, and a locked recv in a crate outside
        // the serving/par root set, both stay clean.
        let out = run_on(&[(
            "crates/ml/src/x.rs",
            "pub struct S { state: Mutex<u8> }\n\
             impl S {\n\
                 pub fn elsewhere(&self, rx: &Receiver) {\n\
                     let g = self.state.lock();\n\
                     let item = rx.recv();\n\
                 }\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn allow_comment_suppresses_and_bare_allow_is_flagged() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8> }\n\
             impl S {\n\
                 pub fn f(&self, rx: &Receiver) {\n\
                     let g = self.state.lock();\n\
                     // lint: allow(lock-block) startup only, nothing contends yet\n\
                     let item = rx.recv();\n\
                     // lint: allow(lock-block)\n\
                     let other = rx.recv_timeout(t);\n\
                 }\n\
             }\n",
        )]);
        let a8: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A8").collect();
        assert_eq!(a8.len(), 1, "{:?}", out.findings);
        assert!(a8[0].message.contains("recv_timeout"));
        let misuses: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{:?}", out.findings);
    }
}
