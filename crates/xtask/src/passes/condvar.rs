//! A9 — condvar discipline.
//!
//! Three rules over the [`crate::lockmodel`] wait/notify sites,
//! workspace-wide:
//!
//! - **Error** — a `Condvar::wait`/`wait_timeout` outside a `while`/
//!   `loop` predicate loop. Condvars wake spuriously and by design wake
//!   more threads than have work; an `if`-guarded wait re-checks
//!   nothing and proceeds on stale state. (`wait_while` carries its own
//!   predicate and is exempt.)
//! - **Warning** — a wait whose guard cannot be pinned to exactly one
//!   live mutex region (zero candidate guards in scope, several, or a
//!   guard argument matching none): the condvar↔mutex pairing is
//!   ambiguous and the model (and the next reader) cannot tell which
//!   state the predicate protects.
//! - **Warning** — a state mutation inside a region of a mutex
//!   associated with a condvar (deref-assign, field assign, or a
//!   growing call like `push_back`) with no `notify_*` afterwards on
//!   any path of the fn: waiters can miss the update and sleep forever.
//!   Bare guard rebinds (`state = next`) and shrinking calls
//!   (`pop`/`take`/`drain`) are exempt — removing work wakes nobody.
//!
//! Suppression: `// lint: allow(condvar) <reason>`.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::lockmodel::{collect_path_backwards, LockKind, LockModel};
use std::collections::{BTreeMap, BTreeSet};

/// Calls that add work a waiter could be sleeping for.
const GROW_CALLS: [&str; 6] = [
    "append",
    "extend",
    "insert",
    "push",
    "push_back",
    "push_front",
];

pub struct CondvarDiscipline;

impl Pass for CondvarDiscipline {
    fn id(&self) -> &'static str {
        "A9"
    }

    fn description(&self) -> &'static str {
        "condvar-discipline: waits outside predicate loops, ambiguous \
         wait guards, and mutations of condvar-associated state without \
         a following notify"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let model = LockModel::build(ctx, &graph);
        // mutex lock id → condvars it guards state for.
        let mut condvars_of: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (cv, mutexes) in &model.assoc {
            for m in mutexes {
                condvars_of.entry(m).or_default().insert(cv);
            }
        }

        for (fid, fl) in model.fns.iter().enumerate() {
            if fl.waits.is_empty() && fl.regions.is_empty() {
                continue;
            }
            let item = &graph.index.fns[fid];
            let Some((b0, b1)) = item.body else {
                continue;
            };
            let file = &ctx.files[item.file];
            let toks = &file.tokens;
            let in_loop = super::hot_alloc::loop_mask(toks, b0, b1);
            let mut findings = Vec::new();
            let mut push = |line: usize, severity: Severity, msg: String| {
                findings.push(Finding {
                    rule: "A9",
                    key: "condvar",
                    severity,
                    path: file.source.path.clone(),
                    line,
                    message: msg,
                });
            };

            for w in &fl.waits {
                let cv = w.condvar.as_deref().unwrap_or("<condvar>");
                if w.method != "wait_while" && !in_loop[w.tok - b0] {
                    push(
                        w.line,
                        Severity::Error,
                        format!(
                            "`{}` on `{cv}` in `{}` is not inside a `while`/`loop` \
                             predicate loop — condvars wake spuriously, so the woken \
                             thread must re-check its predicate before proceeding; \
                             wrap the wait in `while !predicate {{ … }}` or annotate \
                             `// lint: allow(condvar) <reason>`",
                            w.method,
                            item.display()
                        ),
                    );
                }
                let candidates: Vec<&str> = fl
                    .regions
                    .iter()
                    .filter(|r| r.kind == LockKind::Mutex && r.guard.is_some() && r.contains(w.tok))
                    .map(|r| r.lock.as_str())
                    .collect();
                let matched = w.guard_arg.as_deref().is_some_and(|g| {
                    fl.regions.iter().any(|r| {
                        r.kind == LockKind::Mutex
                            && r.guard.as_deref() == Some(g)
                            && r.contains(w.tok)
                    })
                });
                if !matched && candidates.len() != 1 {
                    push(
                        w.line,
                        Severity::Warning,
                        format!(
                            "`{}` on `{cv}` in `{}` has {} candidate mutex guard(s) in \
                             scope — the condvar↔mutex pairing is ambiguous; hold \
                             exactly the mutex whose state the predicate checks, or \
                             annotate `// lint: allow(condvar) <reason>`",
                            w.method,
                            item.display(),
                            candidates.len()
                        ),
                    );
                }
            }

            // Mutations of condvar-associated state need a notify after.
            for r in &fl.regions {
                let Some(cvs) = condvars_of.get(r.lock.as_str()) else {
                    continue;
                };
                let Some(guard) = r.guard.as_deref() else {
                    continue;
                };
                let mutations = find_mutations(toks, b0, r.acq + 1, r.end.min(b1), guard);
                let Some(&(last_mut, line)) = mutations.last() else {
                    continue;
                };
                let notified = fl.notifies.iter().any(|n| {
                    n.tok > last_mut && n.condvar.as_deref().is_none_or(|cv| cvs.contains(cv))
                });
                if !notified {
                    push(
                        line,
                        Severity::Warning,
                        format!(
                            "`{}` (guarding {}) is mutated in `{}` with no following \
                             `notify_*` — a parked waiter can miss this update and \
                             sleep forever; notify after the mutation or annotate \
                             `// lint: allow(condvar) <reason>`",
                            r.lock,
                            cvs.iter()
                                .map(|c| format!("`{c}`"))
                                .collect::<Vec<_>>()
                                .join(", "),
                            item.display()
                        ),
                    );
                }
            }
            let (allowed, _) = file.source.allows("condvar");
            findings.retain(|f| !allowed.contains(&f.line));
            out.findings.extend(findings);
        }

        // Satellite lint: every allow(condvar) must carry a reason.
        for file in &ctx.files {
            let (_, missing) = file.source.allows("condvar");
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(condvar) without a reason — state why this wait/\
                              notify discipline deviation is safe"
                        .into(),
                });
            }
        }
        out
    }
}

/// `(token, line)` of every mutation of `guard`'s state in `[s, e)`:
/// assignments whose left-hand side roots at the guard (except a bare
/// `guard = …` rebind — that is the wait-reacquisition pattern), and
/// growing container calls on it.
fn find_mutations(
    toks: &[Token],
    b0: usize,
    s: usize,
    e: usize,
    guard: &str,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for m in s..e {
        let t = &toks[m];
        if t.is_punct("=") {
            // A single `=` that is not `==`/`<=`/`>=`/`!=`; a compound
            // operator before it (`+=`) still assigns.
            let prev = m.checked_sub(1).map(|i| toks[i].text.as_str());
            if matches!(prev, Some("=" | "<" | ">" | "!"))
                || toks.get(m + 1).is_some_and(|n| n.is_punct("="))
            {
                continue;
            }
            let lhs_end = match prev {
                Some("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") => m.saturating_sub(2),
                _ => m.saturating_sub(1),
            };
            // Statement start: after the previous `;`/`{`/`}`.
            let mut ls = lhs_end;
            while ls > b0 && !matches!(toks[ls - 1].text.as_str(), ";" | "{" | "}") {
                ls -= 1;
            }
            if toks[ls].is_ident("let") {
                continue; // a new binding, not a mutation
            }
            let mut derefs = 0usize;
            while toks[ls].is_punct("*") && ls < lhs_end {
                derefs += 1;
                ls += 1;
            }
            let Some(segs) = collect_path_backwards(toks, b0, lhs_end) else {
                continue;
            };
            if segs.first().map(String::as_str) != Some(guard) {
                continue;
            }
            let bare_rebind = derefs == 0 && segs.len() == 1 && ls == lhs_end;
            if !bare_rebind {
                out.push((m, t.line));
            }
        } else if t.kind == TokKind::Ident
            && GROW_CALLS.contains(&t.text.as_str())
            && m > 0
            && toks[m - 1].is_punct(".")
            && toks.get(m + 1).is_some_and(|n| n.is_punct("("))
        {
            let root = m
                .checked_sub(2)
                .and_then(|i| collect_path_backwards(toks, b0, i))
                .and_then(|segs| segs.first().cloned());
            if root.as_deref() == Some(guard) {
                out.push((m, t.line));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        CondvarDiscipline.run(&ctx)
    }

    #[test]
    fn if_guarded_wait_is_an_error_and_while_loop_is_clean() {
        let bad = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8>, work: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let mut state = self.state.lock();\n\
                     if *state == 0 { state = self.work.wait(state); }\n\
                 }\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = bad.findings.iter().filter(|f| f.rule == "A9").collect();
        assert_eq!(errs.len(), 1, "{:?}", bad.findings);
        assert_eq!(errs[0].severity, Severity::Error);
        assert!(errs[0].message.contains("not inside a `while`/`loop`"));
        assert!(errs[0].message.contains("`S.work`"));
        let good = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8>, work: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let mut state = self.state.lock();\n\
                     while *state == 0 { state = self.work.wait(state); }\n\
                 }\n\
             }\n",
        )]);
        assert!(good.findings.is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn wait_with_no_candidate_guard_is_ambiguous() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { work: Condvar }\n\
             impl S {\n\
                 pub fn park(&self, g: G) {\n\
                     loop { self.work.wait(g); }\n\
                 }\n\
             }\n",
        )]);
        let warns: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.rule == "A9" && f.severity == Severity::Warning)
            .collect();
        assert_eq!(warns.len(), 1, "{:?}", out.findings);
        assert!(warns[0].message.contains("0 candidate mutex guard(s)"));
    }

    #[test]
    fn mutation_without_notify_is_a_warning_and_with_notify_is_clean() {
        let park = "pub fn park(s: &S) {\n\
                        let mut state = s.state.lock();\n\
                        while state.pending == 0 { state = s.work.wait(state); }\n\
                    }\n";
        let bad = run_on(&[(
            "crates/serving/src/server.rs",
            &format!(
                "pub struct S {{ state: Mutex<Q>, work: Condvar }}\n\
                 {park}\
                 pub fn submit(s: &S) {{\n\
                     let mut state = s.state.lock();\n\
                     state.pending += 1;\n\
                 }}\n"
            ),
        )]);
        let warns: Vec<&Finding> = bad
            .findings
            .iter()
            .filter(|f| f.rule == "A9" && f.severity == Severity::Warning)
            .collect();
        assert_eq!(warns.len(), 1, "{:?}", bad.findings);
        assert!(warns[0].message.contains("no following `notify_*`"));
        assert!(warns[0].message.contains("serving::submit"));
        let good = run_on(&[(
            "crates/serving/src/server.rs",
            &format!(
                "pub struct S {{ state: Mutex<Q>, work: Condvar }}\n\
                 {park}\
                 pub fn submit(s: &S) {{\n\
                     let mut state = s.state.lock();\n\
                     state.pending += 1;\n\
                     drop(state);\n\
                     s.work.notify_one();\n\
                 }}\n"
            ),
        )]);
        assert!(good.findings.is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn rebinds_and_shrinking_calls_are_not_mutations() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<Q>, work: Condvar }\n\
             pub fn park(s: &S) {\n\
                 let mut state = s.state.lock();\n\
                 while state.queue.is_empty() { state = s.work.wait(state); }\n\
                 let job = state.queue.pop_front();\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn grow_calls_count_as_mutations() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<Q>, work: Condvar }\n\
             pub fn park(s: &S) {\n\
                 let mut state = s.state.lock();\n\
                 while state.queue.is_empty() { state = s.work.wait(state); }\n\
             }\n\
             pub fn submit(s: &S) {\n\
                 let mut state = s.state.lock();\n\
                 state.queue.push_back(1);\n\
             }\n",
        )]);
        let warns: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.rule == "A9" && f.severity == Severity::Warning)
            .collect();
        assert_eq!(warns.len(), 1, "{:?}", out.findings);
    }

    #[test]
    fn allow_comment_suppresses_and_bare_allow_is_flagged() {
        let out = run_on(&[(
            "crates/serving/src/server.rs",
            "pub struct S { state: Mutex<u8>, work: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let mut state = self.state.lock();\n\
                     // lint: allow(condvar) single-shot gate, checked once by design\n\
                     if *state == 0 { state = self.work.wait(state); }\n\
                 }\n\
                 pub fn park2(&self) {\n\
                     let mut state = self.state.lock();\n\
                     // lint: allow(condvar)\n\
                     if *state == 0 { state = self.work.wait(state); }\n\
                 }\n\
             }\n",
        )]);
        let a9: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A9").collect();
        assert_eq!(a9.len(), 1, "reasonless allow does not suppress: {a9:?}");
        let misuses: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{:?}", out.findings);
    }
}
