//! A3 — cast-safety analysis for the numeric kernels (`ml`, `nn`,
//! `diffusion`).
//!
//! Two classes of silent numeric corruption are flagged:
//!
//! 1. **Lossy narrowing `as` casts** (`as u8/u16/u32/i8/i16/i32/f32`) —
//!    warning. `expr as u32` silently truncates above `u32::MAX`;
//!    `usize as i32` wraps negative. Use `TryFrom` (with an explicit
//!    saturation policy) or widen the target type.
//! 2. **Unchecked subtraction in index arithmetic** — warning. Both
//!    `buf[i - 1]`-style subtraction inside an index expression and
//!    `….len() - <literal>` underflow and panic (debug) or wrap
//!    (release) when the container is empty; use `saturating_sub`/
//!    `checked_sub` or guard the emptiness case on the same expression.
//!
//! Suppress with `// lint: allow(lossy-cast) <reason>` /
//! `// lint: allow(index-underflow) <reason>` when an invariant makes
//! the operation safe (and say which invariant).

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Crates in scope for the cast-safety pass.
const SCOPE: [&str; 3] = ["ml", "nn", "diffusion"];

/// Narrowing cast targets.
const NARROW: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Guard identifiers that make a subtraction site safe when present in
/// the same statement.
const SUB_GUARDS: [&str; 3] = ["saturating_sub", "checked_sub", "is_empty"];

pub struct CastSafety;

impl Pass for CastSafety {
    fn id(&self) -> &'static str {
        "A3"
    }

    fn description(&self) -> &'static str {
        "cast safety: lossy narrowing `as` casts and unchecked usize \
         subtraction in index arithmetic in the ml/nn/diffusion kernels"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        for file in &ctx.files {
            if !SCOPE.contains(&file.crate_name()) {
                continue;
            }
            let mut findings = Vec::new();
            check_narrowing_casts(file, &mut findings);
            check_index_subtraction(file, &mut findings);
            for key in ["lossy-cast", "index-underflow"] {
                let (allowed, _) = file.source.allows(key);
                findings.retain(|f| f.key != key || !allowed.contains(&f.line));
            }
            out.findings.extend(findings);
        }
        out
    }
}

fn check_narrowing_casts(file: &super::AnalyzedFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (j, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(j + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NARROW.contains(&target.text.as_str()) {
            continue;
        }
        // `u32::MAX as usize`-style constants of the narrow type itself
        // widen, they never truncate; `as` here targets the narrow type,
        // so the cast is narrowing by construction.
        findings.push(Finding {
            rule: "A3",
            key: "lossy-cast",
            severity: Severity::Warning,
            path: file.source.path.clone(),
            line: t.line,
            message: format!(
                "narrowing cast `as {0}` silently truncates/wraps out-of-range \
                 values; use `{0}::try_from` with an explicit policy, or annotate \
                 `// lint: allow(lossy-cast) <invariant>`",
                target.text
            ),
        });
    }
}

fn check_index_subtraction(file: &super::AnalyzedFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    // Lines already carrying a guard identifier are exempt wholesale
    // (statement-level granularity matches how the fixes read).
    let guarded: BTreeSet<usize> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && SUB_GUARDS.contains(&t.text.as_str()))
        .map(|t| t.line)
        .collect();

    // Track index-bracket nesting: `[` counts as indexing when preceded
    // by an ident, `)` or `]` (expression position), not when it opens a
    // slice/array literal or attribute.
    let mut index_depth = 0usize;
    let mut bracket_stack: Vec<bool> = Vec::new();
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "[" => {
                let is_index = j > 0
                    && (toks[j - 1].kind == TokKind::Ident
                        || toks[j - 1].is_punct(")")
                        || toks[j - 1].is_punct("]"));
                bracket_stack.push(is_index);
                if is_index {
                    index_depth += 1;
                }
            }
            "]" => {
                if bracket_stack.pop() == Some(true) {
                    index_depth = index_depth.saturating_sub(1);
                }
            }
            "-" if !t.in_test => {
                // Binary minus between two value-ish tokens.
                let prev_ok = j > 0
                    && (toks[j - 1].kind == TokKind::Ident
                        || toks[j - 1].kind == TokKind::Int
                        || toks[j - 1].is_punct(")")
                        || toks[j - 1].is_punct("]"));
                let next = toks.get(j + 1);
                let next_ok =
                    next.is_some_and(|n| n.kind == TokKind::Ident || n.kind == TokKind::Int);
                if !(prev_ok && next_ok) || guarded.contains(&t.line) {
                    continue;
                }
                let in_index = index_depth > 0;
                // `….len() - <int>` anywhere (slice bounds, loop ranges).
                let after_len = j >= 3
                    && toks[j - 1].is_punct(")")
                    && toks[j - 2].is_punct("(")
                    && toks[j - 3].is_ident("len");
                let underflows =
                    after_len && next.is_some_and(|n| n.kind == TokKind::Int && n.text != "0");
                if in_index || underflows {
                    let what = if underflows {
                        format!(
                            "`.len() - {}` underflows when the container holds fewer \
                             than {} element(s)",
                            next.map_or(String::new(), |n| n.text.clone()),
                            next.map_or(String::new(), |n| n.text.clone()),
                        )
                    } else {
                        "unchecked `usize` subtraction inside an index expression \
                         panics (debug) or wraps to a huge index (release) when the \
                         subtrahend is larger"
                            .to_string()
                    };
                    findings.push(Finding {
                        rule: "A3",
                        key: "index-underflow",
                        severity: Severity::Warning,
                        path: file.source.path.clone(),
                        line: t.line,
                        message: format!(
                            "{what}; use `saturating_sub`/`checked_sub`, guard the \
                             empty case, or annotate `// lint: allow(index-underflow) \
                             <invariant>`"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    // One finding per line is enough even when both sub-rules fire.
    findings.dedup_by(|a, b| a.line == b.line && a.key == b.key && a.path == b.path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let source = SourceFile::parse(path, src);
        let tokens = lex(&source);
        let ctx = Context {
            files: vec![AnalyzedFile { source, tokens }],
        };
        CastSafety.run(&ctx).findings
    }

    #[test]
    fn narrowing_cast_is_flagged() {
        let f = run_on(
            "crates/diffusion/src/x.rs",
            "fn f(target: usize) -> u32 { target as u32 }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("as u32"));
    }

    #[test]
    fn widening_casts_are_clean() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f(x: u32, y: f32) -> f64 { x as f64 + y as f64 + (x as usize as f64) }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn len_minus_one_is_flagged() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f(v: &[f64]) -> f64 {\n    let mut s = 0.0;\n    for k in 0..v.len() - 1 { s += v[k]; }\n    s\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".len() - 1"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn subtraction_inside_index_is_flagged() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f(col: &[f64], idx: &[usize], j: usize) -> f64 { col[idx[j - 1]] }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("index expression"));
    }

    #[test]
    fn saturating_sub_and_guards_are_clean() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f(v: &[f64]) -> usize {\n\
                 let n = v.len().saturating_sub(1);\n\
                 if v.is_empty() { return 0; }\n\
                 n\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_subtraction_outside_indexing_is_clean() {
        let f = run_on(
            "crates/nn/src/x.rs",
            "fn f(a: f64, b: f64) -> f64 { a - b - 1.0 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_crates_and_tests_are_skipped() {
        let f = run_on(
            "crates/core/src/x.rs",
            "fn f(x: usize) -> u32 { x as u32 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let f = run_on(
            "crates/ml/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(x: usize) -> u32 { x as u32 }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comments_suppress_each_key() {
        let f = run_on(
            "crates/ml/src/x.rs",
            "fn f(x: usize, v: &[f64]) -> u32 {\n\
                 // lint: allow(lossy-cast) ids fit u32 by dataset construction\n\
                 let a = x as u32;\n\
                 // lint: allow(index-underflow) caller guarantees v.len() >= 2\n\
                 let _ = v[v.len() - 1];\n\
                 a\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
