//! A10 — division/log/sqrt guards on the hot path.
//!
//! Consumes the [`crate::floatflow`] model: every binary `/` (and `/=`
//! and `.recip()`) whose denominator is float-evidenced, every `.ln()`
//! / `.log*()` receiver, and every `.sqrt()` receiver inside a function
//! reachable from the serving/training roots must be provably
//! [`Domain::Positive`]/[`Domain::EpsGuarded`] (non-negative for sqrt)
//! in the value lattice. Anything weaker is one degenerate batch away
//! from a NaN in a served probability, and is an **Error** carrying the
//! operand's defining site and the hot call chain.
//!
//! Deliberate exceptions need `// lint: allow(float-flow) <reason>` —
//! the key is shared with A11/A12 (one annotation covers all numeric-
//! dataflow findings on a line); A10 is the pass that reports bare
//! `allow(float-flow)` misuses.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::floatflow::{hot_reach, CheckKind, FloatFlow};

pub struct DivGuard;

impl Pass for DivGuard {
    fn id(&self) -> &'static str {
        "A10"
    }

    fn description(&self) -> &'static str {
        "float-flow: hot-path divisions, logs and sqrts whose operands \
         are not provably epsilon-guarded/positive in the value lattice"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let flow = FloatFlow::build(ctx, &graph);
        let (_, reach) = hot_reach(&graph);

        for site in &flow.sites.checks {
            if site.in_test {
                continue;
            }
            let Some(chain) = reach.get(&site.fn_id) else {
                continue;
            };
            let proven = match site.kind {
                CheckKind::Div | CheckKind::Recip => !site.val.is_float || site.val.pos(),
                CheckKind::Ln | CheckKind::Log => site.val.pos(),
                CheckKind::Sqrt => site.val.ge0(),
            };
            if proven {
                continue;
            }
            let f = &graph.index.fns[site.fn_id];
            let def = match site.val.def {
                Some(l) => format!("; operand defined at {}:{}", f.path, l),
                None => String::new(),
            };
            out.findings.push(Finding {
                rule: "A10",
                key: "float-flow",
                severity: Severity::Error,
                path: f.path.clone(),
                line: site.line,
                message: format!(
                    "{} `{}` in `{}` is not provably {} ({}{def}); hot via {}; \
                     floor it (`.max(EPS)`, `.max(1)` on an integer count) or \
                     annotate `// lint: allow(float-flow) <reason>`",
                    site.kind.what(),
                    site.expr,
                    f.display(),
                    if site.kind == CheckKind::Sqrt {
                        "non-negative"
                    } else {
                        "positive"
                    },
                    site.val.domain.describe(),
                    graph.chain_display(chain)
                ),
            });
        }

        // Allow-comment suppression; A10 owns misuse reporting for the
        // shared `float-flow` key.
        for file in &ctx.files {
            let (allowed, missing) = file.source.allows("float-flow");
            out.findings
                .retain(|f| !(f.path == file.source.path && allowed.contains(&f.line)));
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(float-flow) without a reason — state why this \
                              value cannot reach zero / leave its domain"
                        .into(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        DivGuard.run(&ctx)
    }

    #[test]
    fn unguarded_hot_division_is_an_error_with_the_defining_site() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub fn serve(total: f64, rows: usize) -> f64 {\n\
                 let n = rows as f64;\n\
                 total / n\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A10").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert_eq!(errs[0].severity, Severity::Error);
        assert!(
            errs[0].message.contains("denominator `n`"),
            "{}",
            errs[0].message
        );
        assert!(errs[0]
            .message
            .contains("defined at crates/serving/src/x.rs:2"));
        assert!(errs[0].message.contains("serving::serve"));
    }

    #[test]
    fn the_guarded_form_is_clean() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub fn serve(total: f64, rows: usize) -> f64 {\n\
                 let n = rows.max(1) as f64;\n\
                 total / n\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn cold_fns_are_out_of_scope() {
        let out = run_on(&[(
            "crates/text/src/x.rs",
            "pub fn helper(a: f64, b: f64) -> f64 { a / b }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn transitive_reachability_and_callee_summaries_both_count() {
        // `inner` lives in a cold crate and is reachable only through
        // `serve`; its ln receiver is unproven. `floor`'s summary proves
        // the division in `serve`.
        let out = run_on(&[
            (
                "crates/serving/src/x.rs",
                "pub fn serve(a: f64, b: f64) -> f64 { a / floor(b) + inner(b) }\n",
            ),
            (
                "crates/ml/src/y.rs",
                "pub fn floor(x: f64) -> f64 { x.max(1e-9) }\n\
                 pub fn inner(x: f64) -> f64 { x.ln() }\n",
            ),
        ]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A10").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("x.ln()"), "{}", errs[0].message);
        assert!(
            errs[0].message.contains("serving::serve → ml::inner"),
            "{}",
            errs[0].message
        );
    }

    #[test]
    fn unknown_sqrt_argument_is_flagged() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub fn serve(v: f64) -> f64 { v.sqrt() }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A10").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("non-negative"));
    }

    #[test]
    fn allow_comment_suppresses_and_bare_allow_is_flagged() {
        let out = run_on(&[(
            "crates/serving/src/x.rs",
            "pub fn serve(a: f64, b: f64) -> f64 {\n\
                 // lint: allow(float-flow) b is a physical rate, always > 0\n\
                 let r = a / b;\n\
                 // lint: allow(float-flow)\n\
                 r / 2.0\n\
             }\n",
        )]);
        let a10: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A10").collect();
        assert!(a10.is_empty(), "{a10:?}");
        let misuses: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{:?}", out.findings);
    }
}
