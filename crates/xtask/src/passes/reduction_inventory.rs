//! A12 — reduction-order / precision inventory.
//!
//! Inventory, not enforcement: every float accumulation loop outside
//! the blessed kernel helpers (fns ending `_into` or `_rows`, where the
//! summation order is pinned by `kernel_parity`), every `as f32`
//! narrowing cast, and every line mixing `f32` and `f64` is reported as
//! a **Note** — these are exactly the sites whose results change under
//! a future SIMD/f32 inference tier (ROADMAP open item 4), so the
//! inventory is that tier's pre-flight checklist. It never fails the
//! build and is never baselined.
//!
//! The same inventory plus the hot-path return-domain summaries are
//! rendered as the `floatflow.dot` artifact, written to
//! `docs/floatflow.dot` by `analyze --emit-floatflow`.

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::floatflow::{hot_reach, FloatFlow};

pub struct ReductionInventory;

/// Kernels whose accumulation order is the documented contract
/// (pinned bit-exactly by `crates/nn/tests/kernel_parity.rs`).
fn blessed(name: &str) -> bool {
    name.ends_with("_into") || name.ends_with("_rows")
}

impl Pass for ReductionInventory {
    fn id(&self) -> &'static str {
        "A12"
    }

    fn description(&self) -> &'static str {
        "float-flow: inventory of float accumulation loops outside the \
         blessed kernels, as-f32 narrowing casts, and mixed-width lines \
         (Notes; the f32/SIMD tier pre-flight checklist)"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let flow = FloatFlow::build(ctx, &graph);
        let (_, reach) = hot_reach(&graph);
        out.artifacts
            .push(("floatflow.dot".to_string(), flow.to_dot(&graph, &reach)));
        let fns = &graph.index.fns;

        for acc in &flow.sites.accs {
            let f = &fns[acc.fn_id];
            if acc.in_test || blessed(&f.name) {
                continue;
            }
            out.findings.push(Finding {
                rule: "A12",
                key: "float-flow",
                severity: Severity::Note,
                path: f.path.clone(),
                line: acc.line,
                message: format!(
                    "float accumulation `{}` in loop of `{}` — summation order is \
                     unpinned here; a vectorized tier would change these bits \
                     (inventory note)",
                    acc.target,
                    f.display()
                ),
            });
        }
        for cast in &flow.sites.casts {
            if cast.in_test {
                continue;
            }
            let f = &fns[cast.fn_id];
            out.findings.push(Finding {
                rule: "A12",
                key: "float-flow",
                severity: Severity::Note,
                path: f.path.clone(),
                line: cast.line,
                message: format!(
                    "f32 narrowing `{}` in `{}` — precision boundary for the f32 \
                     tier (inventory note)",
                    cast.expr,
                    f.display()
                ),
            });
        }
        for mixed in &flow.sites.mixed {
            if mixed.in_test {
                continue;
            }
            let f = &fns[mixed.fn_id];
            out.findings.push(Finding {
                rule: "A12",
                key: "float-flow",
                severity: Severity::Note,
                path: f.path.clone(),
                line: mixed.line,
                message: format!(
                    "line mixes f32 and f64 in `{}` — mixed-width arithmetic site \
                     (inventory note)",
                    f.display()
                ),
            });
        }

        // Shared-key suppression; misuse reporting lives in A10.
        for file in &ctx.files {
            let (allowed, _) = file.source.allows("float-flow");
            out.findings
                .retain(|f| !(f.path == file.source.path && allowed.contains(&f.line)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        ReductionInventory.run(&ctx)
    }

    #[test]
    fn rogue_accumulation_loops_are_notes_and_never_failing() {
        let out = run_on(&[(
            "crates/ml/src/x.rs",
            "pub fn total(xs: f64) -> f64 {\n\
                 let mut acc = 0.0;\n\
                 for x in xs { acc += x; }\n\
                 acc\n\
             }\n",
        )]);
        let notes: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A12").collect();
        assert_eq!(notes.len(), 1, "{:?}", out.findings);
        assert_eq!(notes[0].severity, Severity::Note);
        assert!(!notes[0].severity.is_failing());
        assert!(notes[0].message.contains("`acc`"));
    }

    #[test]
    fn blessed_kernels_are_exempt() {
        let out = run_on(&[(
            "crates/nn/src/tensor.rs",
            "pub fn mm_rows(a: f64) -> f64 {\n\
                 let mut acc = 0.0;\n\
                 for x in a { acc += x; }\n\
                 acc\n\
             }\n\
             pub fn axpy_into(a: f64) -> f64 {\n\
                 let mut s = 0.0;\n\
                 for x in a { s += x; }\n\
                 s\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn casts_and_mixed_width_lines_are_inventoried() {
        let out = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn narrow(x: f64) -> f64 {\n\
                 let y = x as f32;\n\
                 (y as f64) * (x as f32 as f64)\n\
             }\n",
        )]);
        let msgs: Vec<&str> = out
            .findings
            .iter()
            .filter(|f| f.rule == "A12")
            .map(|f| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("f32 narrowing")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("mixes f32 and f64")),
            "{msgs:?}"
        );
    }

    #[test]
    fn the_floatflow_dot_artifact_is_always_emitted() {
        let out = run_on(&[("crates/nn/src/x.rs", "pub fn quiet(x: f64) -> f64 { x }\n")]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let (name, dot) = &out.artifacts[0];
        assert_eq!(name, "floatflow.dot");
        assert!(dot.contains("digraph floatflow"));
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let out = run_on(&[(
            "crates/nn/src/x.rs",
            "#[cfg(test)]\nmod tests {\n\
                 pub fn t(xs: f64) -> f64 {\n\
                     let mut acc = 0.0;\n\
                     for x in xs { acc += x; }\n\
                     acc as f32 as f64\n\
                 }\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
