//! The semantic analysis framework: a pass manager over pre-lexed
//! sources. Unlike the line-based lint rules (R1–R5), passes see every
//! file of the workspace as a token stream and can build cross-line IR
//! (the A1 model graph) before reporting.
//!
//! Pass catalogue:
//!
//! - **A1 shape-flow** (`shape_flow`): extracts the RETINA layer
//!   constructions from `crates/core/src/retina.rs`, builds a model-graph
//!   IR, verifies dimension compatibility across the static and dynamic
//!   heads, and renders the graph as DOT.
//! - **A2 determinism** (`determinism`): unseeded RNG construction,
//!   iteration over `HashMap`/`HashSet` (order-unstable) and wall-clock
//!   reads in the model crates.
//! - **A3 cast-safety** (`cast_safety`): lossy narrowing `as` casts and
//!   unchecked `usize` subtraction in index arithmetic in the
//!   `ml`/`nn`/`diffusion` kernels.
//! - **A4 panic-reachability** (`panic_reach`): builds the workspace
//!   call graph ([`crate::callgraph`]) and reports `unwrap`/`expect`/
//!   `panic!` and unguarded indexing in every fn reachable from the
//!   hot-path roots, with the shortest call chain; emits the
//!   `callgraph.dot` artifact.
//! - **A5 hot-loop allocation** (`hot_alloc`): allocation-shaped calls
//!   (`Vec::new`/`vec!`/`to_vec`/`clone`/`collect`/`String::from`)
//!   inside loops of hot-path-reachable functions.
//! - **A6 discarded-Result** (`result_discard`): `let _ =` and
//!   bare-statement discards of fallible APIs, workspace-wide.
//! - **A7 lock-order** (`lock_order`): cycles and re-entrant self-edges
//!   in the global lock-acquisition-order graph built from the
//!   lock-region model ([`crate::lockmodel`]); emits the
//!   `lockgraph.dot` artifact.
//! - **A8 blocking-under-lock** (`lock_block`): condvar waits holding a
//!   foreign lock, channel recv, thread join, sleep/IO and
//!   alloc-shaped calls inside lock regions reachable from the serving
//!   hot path.
//! - **A9 condvar-discipline** (`condvar`): waits outside predicate
//!   loops, ambiguous wait guards, and mutations of condvar-associated
//!   state with no following notify.
//! - **A10 division/log-guard** (`div_guard`): divisions, `ln`/`log*`
//!   and `sqrt` in hot-path-reachable fns whose operands are not
//!   provably epsilon-guarded/positive in the float value lattice
//!   ([`crate::floatflow`]), with the operand's defining site.
//! - **A11 probability-domain** (`prob_domain`): `loss_probs`
//!   arguments, prob-named bindings and `predict_proba*` returns that
//!   arithmetic can push outside [0,1] without a clamp — the
//!   inter-procedural upgrade of R3.
//! - **A12 reduction-inventory** (`reduction_inventory`): Notes-only
//!   inventory of float accumulation loops outside the blessed
//!   `*_into`/`*_rows` kernels, `as f32` narrowings and mixed-width
//!   lines; emits the `floatflow.dot` artifact.
//! - **A13 unsafe-contract** (`unsafe_contract`): every `unsafe` must
//!   carry a `// SAFETY:` comment; `#[target_feature]` fns callable
//!   only behind runtime `is_x86_feature_detected!` dispatch;
//!   unchecked/raw-pointer ops outside the blessed simd kernels.
//! - **A14 capacity/growth** (`capacity_growth`): derivable-length
//!   `Vec::new()`+`push` loops on the memory hot path must pre-size
//!   with `with_capacity`; growable collections on long-lived structs
//!   ([`crate::memflow`]) must have a remove/clear/bound site.
//! - **A15 footprint-inventory** (`footprint`): Notes-only per-element
//!   byte estimates for the socialsim graph/cascade/dataset and
//!   serving queue types; emits the `memgraph.dot` artifact.
//!
//! Findings carry a severity; `Error` and `Warning` fail the run,
//! `Note` never does. Suppression uses the same allow-comment machinery
//! as the lint: `// lint: allow(<key>) <reason>` with the pass-specific
//! keys `shape`, `determinism`, `lossy-cast`, `index-underflow`,
//! `panic-reach`, `hot-alloc`, `discard-result`, `lock-order`,
//! `lock-block`, `condvar`, `float-flow` (shared by A10–A12; the
//! misuse check for it runs once, in A10), `unsafe-contract`,
//! `mem-flow` (shared by A14–A15; misuse check runs once, in A14). A
//! reasonless allow for the A4–A15 keys is itself an Error (rule
//! `allow`).

pub mod capacity_growth;
pub mod cast_safety;
pub mod condvar;
pub mod determinism;
pub mod div_guard;
pub mod footprint;
pub mod hot_alloc;
pub mod lock_block;
pub mod lock_order;
pub mod panic_reach;
pub mod prob_domain;
pub mod reduction_inventory;
pub mod result_discard;
pub mod shape_flow;
pub mod unsafe_contract;

use crate::lexer::{self, Token};
use crate::source::SourceFile;
use std::fs;
use std::path::Path;

/// Finding severity. Ordering: `Error > Warning > Note`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl Severity {
    /// SARIF `level` string.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Does this severity fail the run?
    pub fn is_failing(self) -> bool {
        self >= Severity::Warning
    }
}

/// One semantic finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Pass id: "A1".."A3" (or "allow" for malformed allow-comments).
    pub rule: &'static str,
    /// Allow-comment key that suppresses this finding.
    pub key: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl Finding {
    /// Stable content fingerprint for the baseline: FNV-1a over
    /// rule + path + message, deliberately excluding the line number so
    /// unrelated edits above a grandfathered finding do not invalidate
    /// the baseline.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(0xcbf29ce484222325, self.rule.as_bytes());
        h = fnv1a(h, b"|");
        h = fnv1a(h, self.path.as_bytes());
        h = fnv1a(h, b"|");
        h = fnv1a(h, self.message.as_bytes());
        h
    }
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A pre-lexed source file shared by all passes.
pub struct AnalyzedFile {
    pub source: SourceFile,
    pub tokens: Vec<Token>,
}

impl AnalyzedFile {
    /// Crate name for a `crates/<name>/src/...` path (`"root"` for the
    /// workspace package's own `src/`).
    pub fn crate_name(&self) -> &str {
        crate_of(&self.source.path)
    }
}

/// Crate name component of a workspace-relative path.
pub fn crate_of(path: &str) -> &str {
    match path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("root"),
        None => "root",
    }
}

/// Everything a pass gets to look at.
pub struct Context {
    pub files: Vec<AnalyzedFile>,
}

impl Context {
    /// The file whose path ends with `suffix`, if present.
    pub fn file_ending_with(&self, suffix: &str) -> Option<&AnalyzedFile> {
        self.files.iter().find(|f| f.source.path.ends_with(suffix))
    }
}

/// Output of one pass: findings plus optional named artifacts (the A1
/// pass emits the DOT model-graph rendering this way).
#[derive(Debug, Default)]
pub struct PassOutput {
    pub findings: Vec<Finding>,
    /// (artifact name, content) pairs, e.g. `("model_graph.dot", …)`.
    pub artifacts: Vec<(String, String)>,
}

/// A registered semantic pass.
pub trait Pass {
    /// Stable rule id ("A1", "A2", "A3").
    fn id(&self) -> &'static str;
    /// One-line description (used in SARIF rule metadata).
    fn description(&self) -> &'static str;
    fn run(&self, ctx: &Context) -> PassOutput;
}

/// All registered passes, in execution order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(shape_flow::ShapeFlow),
        Box::new(determinism::Determinism),
        Box::new(cast_safety::CastSafety),
        Box::new(panic_reach::PanicReach),
        Box::new(hot_alloc::HotAlloc),
        Box::new(result_discard::ResultDiscard),
        Box::new(lock_order::LockOrder),
        Box::new(lock_block::LockBlock),
        Box::new(condvar::CondvarDiscipline),
        Box::new(div_guard::DivGuard),
        Box::new(prob_domain::ProbDomain),
        Box::new(reduction_inventory::ReductionInventory),
        Box::new(unsafe_contract::UnsafeContract),
        Box::new(capacity_growth::CapacityGrowth),
        Box::new(footprint::Footprint),
    ]
}

/// Combined result of an analysis run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    pub findings: Vec<Finding>,
    pub artifacts: Vec<(String, String)>,
    pub files_scanned: usize,
    /// Findings suppressed by the baseline (count only).
    pub baselined: usize,
}

impl AnalysisReport {
    /// Does the run pass? (no Error/Warning findings left)
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity.is_failing())
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}/{}] {}\n",
                f.path,
                f.line,
                f.rule,
                f.severity.sarif_level(),
                f.message
            ));
        }
        out.push_str(&format!(
            "\n{} file(s) analyzed, {} finding(s){}\n",
            self.files_scanned,
            self.findings.len(),
            if self.baselined > 0 {
                format!(" ({} baselined)", self.baselined)
            } else {
                String::new()
            }
        ));
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \
                 \"fingerprint\": \"{:016x}\", \"message\": {}}}{}\n",
                crate::json_str(f.rule),
                crate::json_str(f.severity.sarif_level()),
                crate::json_str(&f.path),
                f.line,
                f.fingerprint(),
                crate::json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"baselined\": {}\n}}\n",
            self.files_scanned, self.baselined
        ));
        out
    }
}

/// Read and lex every library source under `root` into a pass context.
/// Members come from the root manifest via
/// [`crate::workspace_members`] (library sources only; vendor/,
/// tests/, benches/ are out of scope).
pub fn load_workspace(root: &Path) -> std::io::Result<Context> {
    let mut files = Vec::new();
    for member in crate::workspace_members(root)? {
        crate::collect_rs(&member.join("src"), &mut files)?;
    }
    crate::collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut analyzed = Vec::new();
    for path in &files {
        let raw = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = SourceFile::parse(&rel, &raw);
        let tokens = lexer::lex(&source);
        analyzed.push(AnalyzedFile { source, tokens });
    }
    Ok(Context { files: analyzed })
}

/// Run every registered pass over the workspace at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<AnalysisReport> {
    let ctx = load_workspace(root)?;

    let mut report = AnalysisReport {
        files_scanned: ctx.files.len(),
        ..Default::default()
    };
    for pass in registry() {
        let mut out = pass.run(&ctx);
        report.findings.append(&mut out.findings);
        report.artifacts.append(&mut out.artifacts);
    }
    report.findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_failing() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert!(Severity::Error.is_failing());
        assert!(Severity::Warning.is_failing());
        assert!(!Severity::Note.is_failing());
    }

    #[test]
    fn fingerprint_ignores_line_number() {
        let a = Finding {
            rule: "A3",
            key: "lossy-cast",
            severity: Severity::Warning,
            path: "crates/ml/src/x.rs".into(),
            line: 10,
            message: "m".into(),
        };
        let b = Finding {
            line: 99,
            ..a.clone()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Finding {
            message: "other".into(),
            ..a.clone()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/ml/src/gbdt.rs"), "ml");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }
}
