//! A5 — hot-loop allocation discipline.
//!
//! PR 4 moved the kernel hot path onto pooled scratch buffers
//! (`nn::MatrixPool`, the `*_into` kernels); this pass machine-enforces
//! that discipline instead of leaving it to convention. For every fn
//! reachable from the hot-path roots (the same root set as A4), it flags
//! allocation-shaped calls inside loop bodies:
//!
//! - `Vec::new` / `Vec::with_capacity` / `vec![...]`
//! - `.to_vec()` / `.clone()` / `.collect()` / `.to_owned()`
//! - `String::from` / `.to_string()` / `format!`
//!
//! Findings are **Warning** severity: a steady-state allocation in a hot
//! loop is a throughput bug, not a correctness bug. Pre-existing sites
//! are grandfathered in `xtask-baseline.json` and burned down over
//! time; genuinely setup-only allocations can be annotated with
//! `// lint: allow(hot-alloc) <reason>` (the reason is mandatory).

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::lexer::{matching_close, TokKind, Token};

pub struct HotAlloc;

impl Pass for HotAlloc {
    fn id(&self) -> &'static str {
        "A5"
    }

    fn description(&self) -> &'static str {
        "hot-loop allocation: Vec::new/vec!/to_vec/clone/collect/String \
         allocations inside loops of functions reachable from the \
         hot-path roots"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let roots = graph.hot_roots();
        let reach = graph.reachable(&roots);

        for (&fid, chain) in &reach {
            let item = &graph.index.fns[fid];
            if item.in_test {
                continue;
            }
            let Some((b0, b1)) = item.body else {
                continue;
            };
            let file = &ctx.files[item.file];
            let toks = &file.tokens;
            let in_loop = loop_mask(toks, b0, b1);
            let chain_str = graph.chain_display(chain);
            let mut findings = Vec::new();
            for k in b0..b1 {
                if !in_loop[k - b0] {
                    continue;
                }
                if let Some(call) = alloc_shape(toks, k) {
                    findings.push(Finding {
                        rule: "A5",
                        key: "hot-alloc",
                        severity: Severity::Warning,
                        path: file.source.path.clone(),
                        line: toks[k].line,
                        message: format!(
                            "allocation-shaped call `{call}` inside a loop of `{}`, \
                             reachable via {chain_str}; hot loops must reuse pooled \
                             scratch (nn::MatrixPool / *_into kernels) — annotate \
                             `// lint: allow(hot-alloc) <reason>` if setup-only",
                            item.display()
                        ),
                    });
                }
            }
            let (allowed, _) = file.source.allows("hot-alloc");
            findings.retain(|f| !allowed.contains(&f.line));
            out.findings.extend(findings);
        }

        // Satellite lint: every allow(hot-alloc) must carry a reason.
        for file in &ctx.files {
            let (_, missing) = file.source.allows("hot-alloc");
            for line in missing {
                out.findings.push(Finding {
                    rule: "allow",
                    key: "allow",
                    severity: Severity::Error,
                    path: file.source.path.clone(),
                    line,
                    message: "allow(hot-alloc) without a reason — state why this \
                              allocation is acceptable in a hot loop"
                        .into(),
                });
            }
        }
        out
    }
}

/// The allocation-shaped call at token `k`, if any — shared with the A8
/// blocking-under-lock pass, which flags the same shapes inside lock
/// regions instead of loop bodies.
pub(crate) fn alloc_shape(toks: &[Token], k: usize) -> Option<String> {
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next = toks.get(k + 1);
    match t.text.as_str() {
        "new" | "with_capacity" | "from"
            if k >= 2
                && toks[k - 1].is_punct("::")
                && matches!(toks[k - 2].text.as_str(), "Vec" | "String")
                && next.is_some_and(|n| n.is_punct("(")) =>
        {
            Some(format!("{}::{}", toks[k - 2].text, t.text))
        }
        "vec" | "format" if next.is_some_and(|n| n.is_punct("!")) => Some(format!("{}!", t.text)),
        "to_vec" | "clone" | "collect" | "to_string" | "to_owned"
            if k > 0 && toks[k - 1].is_punct(".") && next.is_some_and(|n| n.is_punct("(")) =>
        {
            Some(format!(".{}()", t.text))
        }
        _ => None,
    }
}

/// Per-token flag over `[b0, b1)`: inside at least one `for`/`while`/
/// `loop` body. Loop headers track paren/bracket depth so a closure in
/// the iterated expression does not end the header early.
pub(crate) fn loop_mask(toks: &[Token], b0: usize, b1: usize) -> Vec<bool> {
    let mut mask = vec![false; b1 - b0];
    for k in b0..b1 {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "for" | "while" | "loop") {
            continue;
        }
        // `for` in `impl Trait for Type` never appears inside fn bodies.
        let mut open = None;
        let mut depth = 0i32;
        for m in k + 1..b1 {
            match toks[m].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(m);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching_close(toks, open) else {
            continue;
        };
        for m in open + 1..close.min(b1) {
            mask[m - b0] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(src: &str) -> Vec<Finding> {
        let files = vec![{
            let source = SourceFile::parse("crates/core/src/retina.rs", src);
            let tokens = lex(&source);
            AnalyzedFile { source, tokens }
        }];
        HotAlloc.run(&Context { files }).findings
    }

    #[test]
    fn allocations_in_reachable_loops_are_warnings() {
        let f = run_on(
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self, xs: &[f64]) {\n\
                     let setup = Vec::with_capacity(xs.len());\n\
                     for x in xs {\n\
                         let mut step = Vec::new();\n\
                         let copy = xs.to_vec();\n\
                         step.push(*x);\n\
                     }\n\
                 }\n\
             }\n",
        );
        let warns: Vec<&Finding> = f.iter().filter(|x| x.rule == "A5").collect();
        assert_eq!(warns.len(), 2, "{f:?}");
        assert!(warns.iter().all(|x| x.severity == Severity::Warning));
        assert!(warns[0].message.contains("Vec::new"));
        assert!(warns[1].message.contains(".to_vec()"));
        assert!(warns[0].message.contains("core::Retina::forward"));
    }

    #[test]
    fn unreachable_and_loopless_allocations_are_clean() {
        let f = run_on(
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self) -> Vec<f64> { Vec::new() }\n\
             }\n\
             pub fn cold() { loop { let v = vec![1]; } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn while_and_closure_headers_do_not_confuse_the_mask() {
        let f = run_on(
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self, xs: &[f64]) -> usize {\n\
                     let n = xs.iter().map(|v| v.abs()).count();\n\
                     let mut i = 0;\n\
                     while i < n { i += 1; let s = format!(\"{i}\"); }\n\
                     n\n\
                 }\n\
             }\n",
        );
        let warns: Vec<&Finding> = f.iter().filter(|x| x.rule == "A5").collect();
        assert_eq!(warns.len(), 1, "{f:?}");
        assert!(warns[0].message.contains("format!"));
    }

    #[test]
    fn allow_comment_suppresses_and_needs_a_reason() {
        let f = run_on(
            "pub struct Retina;\n\
             impl Retina {\n\
                 pub fn forward(&mut self, xs: &[f64]) {\n\
                     for _x in xs {\n\
                         // lint: allow(hot-alloc) grows once then stays at capacity\n\
                         let v: Vec<f64> = Vec::new();\n\
                         // lint: allow(hot-alloc)\n\
                         let w: Vec<f64> = Vec::new();\n\
                     }\n\
                 }\n\
             }\n",
        );
        let a5: Vec<&Finding> = f.iter().filter(|x| x.rule == "A5").collect();
        assert_eq!(a5.len(), 1, "reasonless allow does not suppress: {f:?}");
        let misuses: Vec<&Finding> = f.iter().filter(|x| x.rule == "allow").collect();
        assert_eq!(misuses.len(), 1, "{f:?}");
    }
}
