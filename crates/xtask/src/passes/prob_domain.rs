//! A11 — probability-domain escapes.
//!
//! Consumes the [`crate::floatflow`] model to check, workspace-wide in
//! non-test code, that values the codebase treats as probabilities are
//! provably inside `[0,1]`:
//!
//! - the first argument of every `WeightedBce::loss_probs(..)` call
//!   (the paper's loss is defined on probabilities; a value outside
//!   `[0,1]` makes `ln(p)`/`ln(1-p)` explode even through the clamp's
//!   gradient),
//! - every `prob`-named `let` binding whose initializer does arithmetic
//!   without a clamp and whose value the lattice cannot place in
//!   `[0,1]`,
//! - every return expression of a `predict_proba*` head under the same
//!   arithmetic-without-clamp condition.
//!
//! This upgrades the token-local R3 guard heuristic to the
//! inter-procedural value domain: sigmoid-family results and clamped
//! values pass by proof, not by pattern. Escapes are **Errors** with
//! the shared `float-flow` allow key (misuse of a bare allow is
//! reported by A10).

use super::{Context, Finding, Pass, PassOutput, Severity};
use crate::callgraph::CallGraph;
use crate::floatflow::FloatFlow;

pub struct ProbDomain;

impl Pass for ProbDomain {
    fn id(&self) -> &'static str {
        "A11"
    }

    fn description(&self) -> &'static str {
        "float-flow: values used as probabilities (loss_probs arguments, \
         prob-named bindings, predict_proba returns) that arithmetic can \
         push outside [0,1] without a clamp"
    }

    fn run(&self, ctx: &Context) -> PassOutput {
        let mut out = PassOutput::default();
        let graph = CallGraph::build(ctx);
        let flow = FloatFlow::build(ctx, &graph);
        let fns = &graph.index.fns;

        for call in &flow.sites.pcalls {
            if call.in_test || call.val.p01 {
                continue;
            }
            let f = &fns[call.fn_id];
            out.findings.push(Finding {
                rule: "A11",
                key: "float-flow",
                severity: Severity::Error,
                path: f.path.clone(),
                line: call.line,
                message: format!(
                    "`{}` flows into `loss_probs` in `{}` but is not provably in \
                     [0,1] ({}); produce it through the sigmoid family or clamp \
                     to [EPS, 1-EPS], or annotate \
                     `// lint: allow(float-flow) <range proof>`",
                    call.arg,
                    f.display(),
                    call.val.domain.describe()
                ),
            });
        }

        for bind in &flow.sites.pbinds {
            if bind.in_test || bind.val.p01 || !bind.has_arith || bind.has_guard {
                continue;
            }
            let f = &fns[bind.fn_id];
            out.findings.push(Finding {
                rule: "A11",
                key: "float-flow",
                severity: Severity::Error,
                path: f.path.clone(),
                line: bind.line,
                message: format!(
                    "prob-named binding `{}` in `{}` is built by arithmetic that \
                     can leave [0,1] and has no clamp ({}); clamp it, or annotate \
                     `// lint: allow(float-flow) <range proof>`",
                    bind.name,
                    f.display(),
                    bind.val.domain.describe()
                ),
            });
        }

        for ret in &flow.sites.prets {
            if ret.in_test || ret.val.p01 || !ret.has_arith || ret.has_guard {
                continue;
            }
            let f = &fns[ret.fn_id];
            out.findings.push(Finding {
                rule: "A11",
                key: "float-flow",
                severity: Severity::Error,
                path: f.path.clone(),
                line: ret.line,
                message: format!(
                    "`{}` returns a probability built by unclamped arithmetic \
                     that is not provably in [0,1] ({}); clamp the head output, \
                     or annotate `// lint: allow(float-flow) <range proof>`",
                    f.display(),
                    ret.val.domain.describe()
                ),
            });
        }

        // Shared-key suppression; misuse reporting lives in A10.
        for file in &ctx.files {
            let (allowed, _) = file.source.allows("float-flow");
            out.findings
                .retain(|f| !(f.path == file.source.path && allowed.contains(&f.line)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> PassOutput {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        ProbDomain.run(&ctx)
    }

    #[test]
    fn raw_logits_into_loss_probs_are_an_error() {
        let out = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn bad(l: WeightedBce, z: f64, t: f64) -> f64 {\n\
                 l.loss_probs(&z, &t)\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A11").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("loss_probs"));
    }

    #[test]
    fn sigmoid_outputs_into_loss_probs_are_proven_clean() {
        let out = run_on(&[(
            "crates/nn/src/x.rs",
            "pub fn good(l: WeightedBce, z: f64, t: f64) -> f64 {\n\
                 let probs = z.map(stable_sigmoid);\n\
                 l.loss_probs(&probs, &t)\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unclamped_prob_arithmetic_is_an_error_and_the_clamped_form_clean() {
        let out = run_on(&[(
            "crates/diffusion/src/x.rs",
            "pub fn escape(p: f64, boost: f64) -> f64 {\n\
                 let prob_up = p + boost;\n\
                 prob_up\n\
             }\n\
             pub fn held(p: f64, boost: f64) -> f64 {\n\
                 let prob_ok = (p + boost).clamp(0.0, 1.0);\n\
                 prob_ok\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A11").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(errs[0].message.contains("prob_up"), "{}", errs[0].message);
    }

    #[test]
    fn predict_proba_returns_are_checked() {
        let out = run_on(&[(
            "crates/ml/src/x.rs",
            "pub fn predict_proba(score: f64, bias: f64) -> f64 {\n\
                 score * 0.5 + bias\n\
             }\n\
             pub fn predict_proba_ok(score: f64) -> f64 {\n\
                 sigmoid(score)\n\
             }\n",
        )]);
        let errs: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == "A11").collect();
        assert_eq!(errs.len(), 1, "{:?}", out.findings);
        assert!(
            errs[0].message.contains("predict_proba"),
            "{}",
            errs[0].message
        );
    }

    #[test]
    fn allow_comment_suppresses_without_a_duplicate_misuse_report() {
        let out = run_on(&[(
            "crates/diffusion/src/x.rs",
            "pub fn escape(p: f64, boost: f64) -> f64 {\n\
                 // lint: allow(float-flow) renormalized by the caller\n\
                 let prob_up = p + boost;\n\
                 prob_up\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let out = run_on(&[(
            "crates/nn/src/x.rs",
            "#[cfg(test)]\nmod tests {\n\
                 pub fn t(l: WeightedBce, z: f64) -> f64 {\n\
                     let prob_x = z * 2.0;\n\
                     l.loss_probs(&prob_x, &z)\n\
                 }\n\
             }\n",
        )]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
