//! SARIF 2.1.0 emission for analysis findings, so CI systems and
//! editors that speak the OASIS Static Analysis Results Interchange
//! Format can ingest `xtask analyze` output directly
//! (`--format sarif`).
//!
//! Only the required subset of the schema is produced: one `run` with
//! the tool driver, its rule catalogue, and one `result` per finding
//! with a physical location. Everything is emitted deterministically
//! (findings arrive pre-sorted from the pass manager).

use crate::json_str;
use crate::passes::{AnalysisReport, Pass};

/// SARIF schema URI (2.1.0 final).
const SCHEMA: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// Render a full SARIF 2.1.0 log for one analysis run.
pub fn render(report: &AnalysisReport, passes: &[Box<dyn Pass>]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_str(SCHEMA)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"xtask-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/LCS2-IIITD/RETINA\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, pass) in passes.iter().enumerate() {
        // The catalogue carries the long-form rationale and fix
        // guidance shared with `xtask explain`.
        let doc = crate::explain::lookup(pass.id());
        let extra = match doc {
            Some(d) => format!(
                ", \"fullDescription\": {{\"text\": {}}}, \"help\": {{\"text\": {}}}",
                json_str(d.rationale),
                json_str(d.fix)
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}{}}}{}\n",
            json_str(pass.id()),
            json_str(pass.description()),
            extra,
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"partialFingerprints\": {{\"xtask/v1\": \"{:016x}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_str(f.rule),
            json_str(f.severity.sarif_level()),
            json_str(&f.message),
            f.fingerprint(),
            json_str(&f.path),
            f.line.max(1),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{registry, AnalysisReport, Finding, Severity};

    fn sample_report() -> AnalysisReport {
        AnalysisReport {
            findings: vec![Finding {
                rule: "A2",
                key: "determinism",
                severity: Severity::Error,
                path: "crates/ml/src/x.rs".into(),
                line: 7,
                message: "unseeded RNG with \"quotes\" and a \\ backslash".into(),
            }],
            artifacts: Vec::new(),
            files_scanned: 1,
            baselined: 0,
        }
    }

    #[test]
    fn sarif_has_required_fields_and_escapes() {
        let s = render(&sample_report(), &registry());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"$schema\""));
        assert!(s.contains("\"ruleId\": \"A2\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\\\"quotes\\\""));
        assert!(s.contains("rules"));
        // Every registered pass appears in the rule catalogue.
        for id in [
            "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11", "A12", "A13",
            "A14", "A15",
        ] {
            assert!(
                s.contains(&format!("\"id\": \"{id}\"")),
                "missing rule {id}"
            );
        }
    }

    #[test]
    fn rules_carry_full_description_and_help_from_the_catalogue() {
        let s = render(&sample_report(), &registry());
        assert!(s.contains("\"fullDescription\""));
        assert!(s.contains("\"help\""));
        // Spot-check A10's guidance made it through.
        assert!(s.contains("one degenerate batch away"));
    }

    #[test]
    fn sarif_is_balanced_json() {
        let s = render(&sample_report(), &registry());
        // Quick structural sanity: balanced braces/brackets outside strings.
        let mut in_str = false;
        let mut esc = false;
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_report_is_still_valid() {
        let report = AnalysisReport::default();
        let s = render(&report, &registry());
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
