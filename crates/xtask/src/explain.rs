//! Rule catalogue: one entry per lint rule / analysis pass with its
//! rationale and fix guidance. Shared by the `xtask explain <code>`
//! subcommand and the SARIF `fullDescription`/`help` metadata, so the
//! terminal and the code-scanning UI tell the same story.

/// One rule's documentation.
pub struct RuleDoc {
    /// Rule id as it appears in findings (`R1`, `A10`, `allow`).
    pub code: &'static str,
    /// Allow-comment key (`// lint: allow(<key>) <reason>`).
    pub key: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Why the rule exists (what failure it prevents in this codebase).
    pub rationale: &'static str,
    /// How to fix a finding (or when to annotate instead).
    pub fix: &'static str,
}

/// Every rule and pass, in report order.
pub const CATALOGUE: &[RuleDoc] = &[
    RuleDoc {
        code: "R1",
        key: "unwrap",
        title: "no unwrap/expect in non-test library code",
        rationale: "A panic inside training or serving tears down the worker and \
                    loses in-flight requests; every fallible path should surface a \
                    typed error the caller can handle.",
        fix: "Return a Result, use `let .. else`/`match`, or annotate with \
              `// lint: allow(unwrap) <why the invariant holds>` when the \
              panic is a contract violation worth crashing on.",
    },
    RuleDoc {
        code: "R2",
        key: "float-cmp",
        title: "no direct float == / != outside tests",
        rationale: "Exact float equality silently fails after any reordering or \
                    optimization; the RETINA reproduction pins bit-identity in \
                    dedicated tests, not ad-hoc comparisons.",
        fix: "Compare with an explicit epsilon tolerance, or annotate \
              `// lint: allow(float-cmp) <reason>` for genuine bit-level checks.",
    },
    RuleDoc {
        code: "R3",
        key: "prob-guard",
        title: "probability math in loss/attention/gru must be epsilon-guarded",
        rationale: "ln(0) and division by an unguarded sum produce NaN/Inf that \
                    poison every downstream gradient; the paper's weighted BCE \
                    works on probabilities that must stay inside (0, 1).",
        fix: "Clamp to [EPS, 1-EPS] (or `.max(EPS)` a denominator) before the \
              log/division; A10/A11 verify these guards inter-procedurally.",
    },
    RuleDoc {
        code: "R4",
        key: "index",
        title: "tensor element access goes through get/set, not raw indexing",
        rationale: "Raw `data[i * cols + j]` indexing bypasses the shape checks \
                    and breaks silently when a layout changes.",
        fix: "Use the Matrix accessors; annotate `// lint: allow(index)` \
              inside the blessed kernels where the bounds are hoisted.",
    },
    RuleDoc {
        code: "R5",
        key: "(none — R5 is inventory-only)",
        title: "TODO/FIXME/HACK markers are inventoried",
        rationale: "Deferred work should be visible in review, not buried; the \
                    inventory keeps the count from silently growing.",
        fix: "Resolve the marker or keep it — R5 is a Note-level inventory, \
              never a failure.",
    },
    RuleDoc {
        code: "allow",
        key: "allow",
        title: "allow-comments must carry a reason",
        rationale: "A bare `// lint: allow(key)` records that a finding was \
                    silenced but not why, which makes the suppression \
                    unreviewable.",
        fix: "State the invariant that makes the finding safe, in at least a \
              few words: `// lint: allow(key) <reason>`.",
    },
    RuleDoc {
        code: "A1",
        key: "shape",
        title: "RETINA graph wiring and symbolic shape contract",
        rationale: "Rebuilds the user-dense → merge → static/dynamic-head graph \
                    from retina.rs and evaluates symbolic dims, so a mis-wired \
                    layer fails analysis instead of producing garbage outputs.",
        fix: "Restore the documented wiring contract (DESIGN.md §6) or update \
              the expected-graph model alongside a deliberate architecture \
              change.",
    },
    RuleDoc {
        code: "A2",
        key: "determinism",
        title: "no unseeded RNG, hash-order iteration, or wall-clock in results",
        rationale: "Training and aggregation must replay bit-identically for the \
                    regression suites; HashMap iteration order and wall-clock \
                    reads make results machine-dependent.",
        fix: "Use seeded RNG, BTreeMap/BTreeSet for iterated state, and keep \
              clock reads out of result paths (annotate deadline clocks with \
              `// lint: allow(determinism) <reason>`).",
    },
    RuleDoc {
        code: "A3",
        key: "lossy-cast (also: index-underflow)",
        title: "lossy narrowing casts and unchecked index arithmetic",
        rationale: "A silently truncating `as` cast or an underflowing index \
                    subtraction corrupts data instead of failing.",
        fix: "Use try_from/saturating_sub, or annotate bounded casts with \
              `// lint: allow(lossy-cast) <bound invariant>`.",
    },
    RuleDoc {
        code: "A4",
        key: "panic-reach",
        title: "panics reachable from the hot path",
        rationale: "unwrap/expect/panic!/unguarded indexing reachable from \
                    forward/backward/fit/predict/serving crashes a worker \
                    mid-request; the call chain in the finding shows the route.",
        fix: "Make the callee infallible or return a Result along the chain; \
              contract panics keep `// lint: allow(panic-reach) <invariant>`.",
    },
    RuleDoc {
        code: "A5",
        key: "hot-alloc",
        title: "allocation inside hot-path loops",
        rationale: "Per-iteration Vec/Box/format allocation in forward/backward \
                    loops dominates small-model runtime; the kernels thread \
                    scratch buffers instead.",
        fix: "Hoist the allocation out of the loop or reuse a scratch buffer \
              (see tensor.rs `*_into` variants).",
    },
    RuleDoc {
        code: "A6",
        key: "discard-result",
        title: "discarded Result values",
        rationale: "`let _ = fallible()` silently swallows errors that the \
                    caller should at least log or propagate.",
        fix: "Handle or propagate the Result; annotate deliberate fire-and-\
              forget sites with `// lint: allow(discarded-result) <reason>`.",
    },
    RuleDoc {
        code: "A7",
        key: "lock-order",
        title: "lock-acquisition-order cycles",
        rationale: "Two threads taking the same locks in different orders can \
                    each wait on the other forever; a cycle in the global \
                    acquisition-order graph is a latent deadlock.",
        fix: "Pick one global acquisition order or narrow a region so the \
              locks are never held together (DESIGN.md §11).",
    },
    RuleDoc {
        code: "A8",
        key: "lock-block",
        title: "blocking calls while holding a lock",
        rationale: "Waiting on a condvar/channel/join/IO while holding an \
                    unrelated lock stalls every thread that needs it and can \
                    deadlock the batching pipeline.",
        fix: "Drop the guard before blocking (move the blocking call out of \
              the region), or annotate a proven-bounded wait.",
    },
    RuleDoc {
        code: "A9",
        key: "condvar",
        title: "condvar discipline: while-loops and notify pairing",
        rationale: "`if`-guarded waits miss spurious wakeups; mutating condvar-\
                    associated state without a notify strands sleeping waiters.",
        fix: "Re-check the predicate in a `while` loop around every wait and \
              notify after every associated-state mutation.",
    },
    RuleDoc {
        code: "A10",
        key: "float-flow",
        title: "division/log/sqrt guards on the hot path",
        rationale: "A division, ln/log, or sqrt whose operand is not provably \
                    epsilon-guarded/positive in a function reachable from the \
                    serving/training roots is one degenerate batch away from \
                    NaN — and NaN in a served probability is an incident, not \
                    a test diff.",
        fix: "Floor the operand (`.max(EPS)`, `.max(1)` on an integer count \
              before the cast — bit-identical for non-empty inputs), guard \
              the branch, or annotate \
              `// lint: allow(float-flow) <why it cannot be zero>`; the \
              finding names the defining site of the operand.",
    },
    RuleDoc {
        code: "A11",
        key: "float-flow",
        title: "probability-domain escapes",
        rationale: "Values flowing into WeightedBce::loss_probs, predict_proba \
                    heads, and prob-named bindings must stay in [0,1]; \
                    arithmetic without a clamp can push them outside and the \
                    weighted-BCE logs then explode. Upgrades the token-local \
                    R3 guard check to the inter-procedural value domain.",
        fix: "Clamp to [EPS, 1-EPS], produce the value through the sigmoid \
              family, or annotate `// lint: allow(float-flow) <range proof>`.",
    },
    RuleDoc {
        code: "A12",
        key: "float-flow",
        title: "reduction-order / precision inventory (Notes only)",
        rationale: "Every float accumulation loop outside the blessed `*_into`/\
                    `*_rows` kernels, every `as f32` narrowing, and every \
                    mixed-width line is exactly the set of sites a future \
                    SIMD/f32 tier would silently change; the inventory (also \
                    rendered to docs/floatflow.dot) is that tier's pre-flight \
                    checklist.",
        fix: "Nothing to fix — A12 is an inventory and never fails the build. \
              Route new reductions through the blessed kernels to keep it \
              short.",
    },
    RuleDoc {
        code: "A13",
        key: "unsafe-contract",
        title: "unsafe contracts: SAFETY comments and feature-gated dispatch",
        rationale: "An `unsafe` block without a written obligation rots into \
                    folklore; a `#[target_feature]` fn called outside a \
                    runtime `is_x86_feature_detected!` check is undefined \
                    behaviour on older hosts; unchecked indexing and raw-\
                    pointer arithmetic outside the blessed simd kernels \
                    trades the memory-safety baseline for nothing the \
                    dispatch tier doesn't already provide.",
        fix: "Write a `// SAFETY:` comment directly above the unsafe block \
              stating the invariant that discharges it, guard every \
              `#[target_feature]` call behind `is_x86_feature_detected!`, \
              and keep unchecked ops inside `crates/nn/src/tensor32.rs`; \
              annotate `// lint: allow(unsafe-contract) <proof>` only with \
              the obligation written out.",
    },
    RuleDoc {
        code: "A14",
        key: "mem-flow",
        title: "capacity and growth discipline on the hot path",
        rationale: "A hot-path `Vec::new()` filled by a loop whose length was \
                    derivable pays O(log n) reallocations and copies for \
                    nothing; a growable collection on a long-lived struct \
                    with inserts but no remove/clear/len-bound is a slow \
                    leak that only shows up days into a serving run.",
        fix: "Pre-size with `Vec::with_capacity` from the derivable bound \
              (bit-identical: capacity never changes contents), bound or \
              drain long-lived collections, or annotate \
              `// lint: allow(mem-flow) <why the growth is bounded>`.",
    },
    RuleDoc {
        code: "A15",
        key: "mem-flow",
        title: "memory-footprint inventory (Notes only)",
        rationale: "The million-user scale-up (ROADMAP item 1) is budgeted \
                    against per-element bytes of the socialsim graph/cascade/\
                    dataset types and the serving queue types; the estimated \
                    layout inventory (also rendered to docs/memgraph.dot and \
                    measured end-to-end by `mem-report`'s VmHWM ceiling in \
                    BENCH_graph.json) is that budget's line-item sheet.",
        fix: "Nothing to fix — A15 is an inventory and never fails the \
              build. Keep per-element types lean (u32 ids, SoA layouts) to \
              keep the sheet short.",
    },
];

/// Look up one rule by id (case-insensitive).
pub fn lookup(code: &str) -> Option<&'static RuleDoc> {
    CATALOGUE.iter().find(|d| d.code.eq_ignore_ascii_case(code))
}

/// Render one rule for the terminal.
pub fn render(doc: &RuleDoc) -> String {
    format!(
        "{} — {}\n  allow key: {}\n  why: {}\n  fix: {}\n",
        doc.code, doc.title, doc.key, doc.rationale, doc.fix
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_analysis_pass_and_rule_is_documented() {
        for code in [
            "R1", "R2", "R3", "R4", "R5", "allow", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8",
            "A9", "A10", "A11", "A12", "A13", "A14", "A15",
        ] {
            assert!(lookup(code).is_some(), "missing catalogue entry for {code}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_render_has_the_parts() {
        let doc = lookup("a10").expect("a10");
        let text = render(doc);
        assert!(text.contains("A10") && text.contains("float-flow"));
        assert!(text.contains("why:") && text.contains("fix:"));
    }

    #[test]
    fn unknown_codes_miss() {
        assert!(lookup("A99").is_none());
    }
}
