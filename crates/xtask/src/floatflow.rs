//! Intra-procedural float value-domain dataflow (ISSUE 8).
//!
//! Tracks a small abstract value per float expression — a positivity
//! lattice ([`Domain`]: `Unknown < NonNeg < Positive < EpsGuarded`,
//! ordered by knowledge) plus orthogonal `[0,1]`-membership (`p01`) and
//! `≤ 1−ε` (`lt_one`) flags and an optional folded constant — seeded
//! from literals, `const` declarations, `.max(EPS)` / `+ eps` /
//! `.clamp(lo,hi)` idioms, the sigmoid family, and comparison-guarded
//! branches, then propagated through per-function return summaries
//! along the §9 call graph (a few chaotic-iteration rounds; transfers
//! are monotone enough that four rounds reach the useful fixpoint).
//!
//! The engine is deliberately approximate and every approximation is
//! one-sided where it matters (see DESIGN.md §12): bindings are a flat
//! per-function environment (last write wins, no block scoping), guard
//! facts apply over token ranges, collections carry the elementwise
//! value of their contents, and `x != 0` guards promote to `Positive`
//! (nonzero-ness is what division needs; `ln` of a guarded negative is
//! an accepted false-clean).
//!
//! Three passes consume the model: A10 (division/log/sqrt guards on the
//! hot path), A11 (probability-domain escapes), A12 (reduction-order /
//! precision inventory rendered to `docs/floatflow.dot`).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::items::FnItem;
use crate::lexer::{matching_close, render, split_args, TokKind, Token};
use crate::passes::Context;

/// Positivity lattice, ordered by knowledge: joining two control-flow
/// paths takes the minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Domain {
    /// No sign information.
    Unknown,
    /// Provably `>= 0` (may be exactly zero).
    NonNeg,
    /// Provably `> 0` (or provably nonzero via a `!= 0` guard).
    Positive,
    /// Provably bounded away from zero by an explicit epsilon
    /// (`.max(EPS)`, `.clamp(eps, ..)`, `x >= EPS` guard, `+ eps` on a
    /// non-negative base).
    EpsGuarded,
}

impl Domain {
    /// Human description for findings.
    pub fn describe(self) -> &'static str {
        match self {
            Domain::Unknown => "unknown sign",
            Domain::NonNeg => "non-negative but possibly zero",
            Domain::Positive => "positive",
            Domain::EpsGuarded => "epsilon-guarded",
        }
    }

    /// Short label for DOT rendering.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Unknown => "?",
            Domain::NonNeg => ">=0",
            Domain::Positive => ">0",
            Domain::EpsGuarded => ">=eps",
        }
    }
}

/// Abstract value of one expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Val {
    pub domain: Domain,
    /// Provably within `[0, 1]`.
    pub p01: bool,
    /// Provably `<= 1 - eps` (so `1.0 - x` is [`Domain::EpsGuarded`]).
    pub lt_one: bool,
    /// Evidence this is a float expression (literal, typed binding,
    /// cast, float-returning callee).
    pub is_float: bool,
    /// Folded constant, when the expression is a literal computation.
    pub value: Option<f64>,
    /// 1-based line of the defining `let`, for "defined at" notes.
    pub def: Option<usize>,
}

impl Val {
    pub fn unknown() -> Val {
        Val {
            domain: Domain::Unknown,
            p01: false,
            lt_one: false,
            is_float: false,
            value: None,
            def: None,
        }
    }

    fn float(domain: Domain) -> Val {
        Val {
            domain,
            is_float: true,
            ..Val::unknown()
        }
    }

    /// Provably `>= 0`.
    pub fn ge0(&self) -> bool {
        self.p01 || self.domain >= Domain::NonNeg
    }

    /// Provably nonzero (safe denominator).
    pub fn pos(&self) -> bool {
        self.domain >= Domain::Positive
    }

    /// Join of two control paths (intersection of knowledge).
    pub fn join(&self, other: &Val) -> Val {
        Val {
            domain: self.domain.min(other.domain),
            p01: self.p01 && other.p01,
            lt_one: self.lt_one && other.lt_one,
            is_float: self.is_float || other.is_float,
            value: match (self.value, other.value) {
                (Some(a), Some(b)) if about(a, b) => Some(a),
                _ => None,
            },
            def: self.def.or(other.def),
        }
    }
}

/// Float equality at fold precision (avoids raw float `==`).
fn about(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

/// Abstract value of a known constant.
fn of_const(v: f64, is_float: bool) -> Val {
    let domain = if v > 0.0 {
        Domain::EpsGuarded
    } else if v >= 0.0 {
        Domain::NonNeg
    } else {
        Domain::Unknown
    };
    Val {
        domain,
        p01: (0.0..=1.0).contains(&v),
        lt_one: v < 1.0,
        is_float,
        value: Some(v),
        def: None,
    }
}

fn add(a: &Val, b: &Val) -> Val {
    let domain = if a.domain == Domain::Unknown || b.domain == Domain::Unknown {
        Domain::Unknown
    } else {
        // Both >= 0: the sum's lower bound is the larger of the two.
        a.domain.max(b.domain)
    };
    Val {
        domain,
        p01: false,
        lt_one: false,
        is_float: a.is_float || b.is_float,
        value: fold2(a, b, |x, y| x + y),
        def: None,
    }
}

fn sub(a: &Val, b: &Val) -> Val {
    // The one shape we understand precisely is `1.0 - x`, the
    // probability complement.
    if matches!(a.value, Some(v) if about(v, 1.0)) {
        let domain = if b.lt_one {
            Domain::EpsGuarded
        } else if b.p01 {
            Domain::NonNeg
        } else {
            Domain::Unknown
        };
        return Val {
            domain,
            p01: b.p01,
            lt_one: b.domain == Domain::EpsGuarded,
            is_float: a.is_float || b.is_float,
            value: fold2(a, b, |x, y| x - y),
            def: None,
        };
    }
    Val {
        domain: Domain::Unknown,
        p01: false,
        lt_one: false,
        is_float: a.is_float || b.is_float,
        value: fold2(a, b, |x, y| x - y),
        def: None,
    }
}

fn mul(a: &Val, b: &Val) -> Val {
    let domain = if a.pos() && b.pos() {
        // eps*eps can underflow toward zero, so never stronger than
        // Positive.
        Domain::Positive
    } else if a.ge0() && b.ge0() {
        Domain::NonNeg
    } else {
        Domain::Unknown
    };
    Val {
        domain,
        p01: a.p01 && b.p01,
        lt_one: (a.p01 && b.lt_one) || (b.p01 && a.lt_one),
        is_float: a.is_float || b.is_float,
        value: fold2(a, b, |x, y| x * y),
        def: None,
    }
}

fn div(a: &Val, b: &Val) -> Val {
    let domain = if a.pos() && b.pos() {
        Domain::Positive
    } else if a.ge0() && b.pos() {
        Domain::NonNeg
    } else {
        Domain::Unknown
    };
    let value = match (a.value, b.value) {
        (Some(x), Some(y)) if y.abs() > 1e-300 => Some(x / y),
        _ => None,
    };
    Val {
        domain,
        p01: false,
        lt_one: false,
        is_float: a.is_float || b.is_float,
        value,
        def: None,
    }
}

fn fold2(a: &Val, b: &Val, f: impl Fn(f64, f64) -> f64) -> Option<f64> {
    match (a.value, b.value) {
        (Some(x), Some(y)) => Some(f(x, y)),
        _ => None,
    }
}

fn negate(v: &Val) -> Val {
    match v.value {
        Some(x) => {
            let mut out = of_const(-x, v.is_float);
            out.is_float = v.is_float;
            out
        }
        None => Val {
            is_float: v.is_float,
            ..Val::unknown()
        },
    }
}

/// What a guarded-use check site needs proven about its operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Binary `/` or `/=`: denominator must be nonzero.
    Div,
    /// `.recip()`: receiver must be nonzero.
    Recip,
    /// `.ln()`: receiver must be positive.
    Ln,
    /// `.log{,2,10}()`: receiver must be positive.
    Log,
    /// `.sqrt()`: receiver must be non-negative.
    Sqrt,
}

impl CheckKind {
    pub fn what(self) -> &'static str {
        match self {
            CheckKind::Div | CheckKind::Recip => "denominator",
            CheckKind::Ln | CheckKind::Log => "log argument",
            CheckKind::Sqrt => "sqrt argument",
        }
    }
}

/// One division / log / sqrt use, with the evaluated operand.
#[derive(Debug, Clone)]
pub struct CheckSite {
    pub kind: CheckKind,
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
    /// Rendered operand (denominator / receiver).
    pub expr: String,
    pub val: Val,
}

/// `WeightedBce::loss_probs(p, ..)` call: `p` must be in [0,1].
#[derive(Debug, Clone)]
pub struct ProbCall {
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
    pub arg: String,
    pub val: Val,
}

/// A `prob`-named `let` binding.
#[derive(Debug, Clone)]
pub struct ProbBind {
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
    pub name: String,
    pub val: Val,
    pub has_arith: bool,
    pub has_guard: bool,
}

/// Return expression of a `predict_proba*` head.
#[derive(Debug, Clone)]
pub struct ProbRet {
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
    pub val: Val,
    pub has_arith: bool,
    pub has_guard: bool,
}

/// Float accumulation (`+=` / `x = x + ..`) inside a loop body.
#[derive(Debug, Clone)]
pub struct AccSite {
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
    pub target: String,
}

/// `as f32` narrowing cast.
#[derive(Debug, Clone)]
pub struct CastSite {
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
    pub expr: String,
}

/// Line mentioning both `f32` and `f64` (mixed-width arithmetic risk).
#[derive(Debug, Clone)]
pub struct MixedSite {
    pub fn_id: usize,
    pub line: usize,
    pub in_test: bool,
}

/// All check sites gathered in one analysis round.
#[derive(Debug, Default)]
pub struct Sites {
    pub checks: Vec<CheckSite>,
    pub pcalls: Vec<ProbCall>,
    pub pbinds: Vec<ProbBind>,
    pub prets: Vec<ProbRet>,
    pub accs: Vec<AccSite>,
    pub casts: Vec<CastSite>,
    pub mixed: Vec<MixedSite>,
}

/// The workspace float-domain model: per-fn return summaries plus every
/// recorded check site from the final analysis round.
pub struct FloatFlow {
    pub summaries: Vec<Val>,
    pub sites: Sites,
}

/// The A10 root set: the §9 hot roots plus every non-test serving fn
/// (same composition as the lock-region roots).
pub fn hot_reach(graph: &CallGraph) -> (Vec<usize>, BTreeMap<usize, Vec<usize>>) {
    let mut roots: BTreeSet<usize> = graph.hot_roots().into_iter().collect();
    for (i, f) in graph.index.fns.iter().enumerate() {
        if !f.in_test && f.body.is_some() && f.path.starts_with("crates/serving/src/") {
            roots.insert(i);
        }
    }
    let roots: Vec<usize> = roots.into_iter().collect();
    let reach = graph.reachable(&roots);
    (roots, reach)
}

impl FloatFlow {
    pub fn build(ctx: &Context, graph: &CallGraph) -> FloatFlow {
        let consts = collect_consts(ctx);
        let site_map: BTreeMap<(usize, usize), usize> = graph
            .edges
            .iter()
            .map(|e| ((graph.index.fns[e.caller].file, e.site), e.callee))
            .collect();
        let n = graph.index.fns.len();
        let mut summaries = vec![Val::unknown(); n];
        for (i, f) in graph.index.fns.iter().enumerate() {
            summaries[i].is_float = f.returns_float;
        }
        let mut rounds = 0usize;
        loop {
            let mut sites = Sites::default();
            let mut changed = false;
            for (i, f) in graph.index.fns.iter().enumerate() {
                let Some(body) = f.body else { continue };
                let toks = &ctx.files[f.file].tokens;
                let mut flow = FnFlow {
                    toks,
                    file: f.file,
                    fn_id: i,
                    item: f,
                    lo: body.0,
                    hi: body.1,
                    consts: &consts,
                    site_map: &site_map,
                    fns: &graph.index.fns,
                    summaries: &summaries,
                    env: BTreeMap::new(),
                    guards: Vec::new(),
                    len_pos: Vec::new(),
                    loops: Vec::new(),
                    rets: Vec::new(),
                };
                let s = flow.run(&mut sites);
                if s != summaries[i] {
                    summaries[i] = s;
                    changed = true;
                }
            }
            rounds += 1;
            if !changed || rounds >= 4 {
                return FloatFlow { summaries, sites };
            }
        }
    }

    /// DOT rendering: hot-reachable float-returning fns labeled with
    /// their return domains, call edges among them, and the A12
    /// inventory (accumulation loops, casts, mixed-width lines) as
    /// header comments. Committed at `docs/floatflow.dot`.
    pub fn to_dot(&self, graph: &CallGraph, reach: &BTreeMap<usize, Vec<usize>>) -> String {
        let fns = &graph.index.fns;
        let mut out = String::from("digraph floatflow {\n");
        out.push_str("  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        let accs: Vec<&AccSite> = self.sites.accs.iter().filter(|a| !a.in_test).collect();
        let casts: Vec<&CastSite> = self.sites.casts.iter().filter(|c| !c.in_test).collect();
        let mixed: Vec<&MixedSite> = self.sites.mixed.iter().filter(|m| !m.in_test).collect();
        out.push_str(&format!(
            "  // hot-reachable fns: {} | float accumulation loops: {} | \
             as-f32 casts: {} | mixed-width lines: {}\n",
            reach.len(),
            accs.len(),
            casts.len(),
            mixed.len()
        ));
        for a in &accs {
            out.push_str(&format!(
                "  // acc: {}:{} `{}` in {}\n",
                fns[a.fn_id].path,
                a.line,
                a.target,
                fns[a.fn_id].display()
            ));
        }
        for c in &casts {
            out.push_str(&format!(
                "  // cast: {}:{} `{}` in {}\n",
                fns[c.fn_id].path,
                c.line,
                c.expr,
                fns[c.fn_id].display()
            ));
        }
        for m in &mixed {
            out.push_str(&format!(
                "  // mixed-width: {}:{} in {}\n",
                fns[m.fn_id].path,
                m.line,
                fns[m.fn_id].display()
            ));
        }
        let include: BTreeSet<usize> = reach
            .keys()
            .copied()
            .filter(|&i| fns[i].returns_float && !fns[i].in_test)
            .collect();
        for &i in &include {
            let s = &self.summaries[i];
            let mut tag = s.domain.label().to_string();
            if s.p01 {
                tag.push_str(" in [0,1]");
            }
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n{}\"];\n",
                fns[i].display(),
                fns[i].display(),
                tag
            ));
        }
        let mut seen = BTreeSet::new();
        for e in &graph.edges {
            if include.contains(&e.caller)
                && include.contains(&e.callee)
                && seen.insert((e.caller, e.callee))
            {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    fns[e.caller].display(),
                    fns[e.callee].display()
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// `const NAME: <num type> = [-]<literal>;` declarations, workspace-wide.
fn collect_consts(ctx: &Context) -> BTreeMap<String, (f64, bool)> {
    let mut out = BTreeMap::new();
    for file in &ctx.files {
        let toks = &file.tokens;
        let mut k = 0usize;
        while k + 5 < toks.len() {
            if toks[k].is_ident("const")
                && toks[k + 1].kind == TokKind::Ident
                && toks[k + 2].is_punct(":")
                && toks[k + 3].kind == TokKind::Ident
                && toks[k + 4].is_punct("=")
            {
                let ty = toks[k + 3].text.as_str();
                let isf = matches!(ty, "f64" | "f32");
                let isnum = isf
                    || matches!(
                        ty,
                        "usize" | "u64" | "u32" | "u16" | "u8" | "i64" | "i32" | "i16"
                    );
                let (lit, neg) = if toks[k + 5].is_punct("-") {
                    (k + 6, true)
                } else {
                    (k + 5, false)
                };
                if isnum {
                    if let Some(v) = toks.get(lit).and_then(parse_num) {
                        let v = if neg { -v } else { v };
                        out.insert(toks[k + 1].text.clone(), (v, isf));
                    }
                }
                k = lit + 1;
            } else {
                k += 1;
            }
        }
    }
    out
}

/// Parse a numeric literal token (`1.0`, `1e-12`, `0x10`, `1_000u32`).
fn parse_num(t: &Token) -> Option<f64> {
    let text: String = t.text.chars().filter(|c| *c != '_').collect();
    match t.kind {
        TokKind::Float => {
            let trimmed = text.trim_end_matches("f64").trim_end_matches("f32");
            trimmed.parse::<f64>().ok()
        }
        TokKind::Int => {
            if let Some(hex) = text.strip_prefix("0x") {
                return u64::from_str_radix(hex, 16).ok().map(|v| v as f64);
            }
            let mut s = text.as_str();
            for suf in [
                "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
            ] {
                if let Some(stripped) = s.strip_suffix(suf) {
                    s = stripped;
                    break;
                }
            }
            s.parse::<u64>().ok().map(|v| v as f64)
        }
        _ => None,
    }
}

const SIGMOID_FAMILY: [&str; 3] = ["sigmoid", "stable_sigmoid", "softmax"];

fn guard_method(name: &str) -> bool {
    matches!(name, "clamp" | "min" | "max")
}

/// Per-function analysis state.
struct FnFlow<'a> {
    toks: &'a [Token],
    file: usize,
    fn_id: usize,
    item: &'a FnItem,
    lo: usize,
    hi: usize,
    consts: &'a BTreeMap<String, (f64, bool)>,
    site_map: &'a BTreeMap<(usize, usize), usize>,
    fns: &'a [FnItem],
    summaries: &'a [Val],
    env: BTreeMap<String, Val>,
    /// `(name, tok_start, tok_end, promoted domain)` guard regions.
    guards: Vec<(String, usize, usize, Domain)>,
    /// Idents proven non-empty over a token range (`.len()` positive).
    len_pos: Vec<(String, usize, usize)>,
    loops: Vec<(usize, usize)>,
    rets: Vec<Val>,
}

impl<'a> FnFlow<'a> {
    fn run(&mut self, sites: &mut Sites) -> Val {
        self.seed_params();
        self.walk(sites);
        self.mixed_lines(sites);
        let tail = self.tail_range();
        if let Some((s, e)) = tail {
            let v = self.eval(s, e);
            self.record_ret(sites, v, self.toks.get(s).map_or(0, |t| t.line), s, e);
        }
        let mut summary = match self.rets.split_first() {
            Some((first, rest)) => rest.iter().fold(*first, |a, b| a.join(b)),
            None => Val::unknown(),
        };
        summary.is_float |= self.item.returns_float;
        summary.def = None;
        summary
    }

    fn seed_params(&mut self) {
        let Some((ps, pe)) = self.item.params else {
            return;
        };
        for (s, e) in split_args(self.toks, ps, pe) {
            let mut i = s;
            while i < e && (self.toks[i].is_ident("mut") || self.toks[i].is_punct("&")) {
                i += 1;
            }
            if i + 1 >= e || self.toks[i].kind != TokKind::Ident || !self.toks[i + 1].is_punct(":")
            {
                continue;
            }
            let name = self.toks[i].text.clone();
            let mut val = Val::unknown();
            for t in &self.toks[i + 2..e] {
                match t.text.as_str() {
                    "f64" | "f32" => val.is_float = true,
                    "usize" | "u64" | "u32" | "u16" | "u8" => {
                        val.domain = val.domain.max(Domain::NonNeg)
                    }
                    _ => {}
                }
            }
            self.env.insert(name, val);
        }
    }

    /// Linear walk over the body: environment updates, guard regions,
    /// loop regions, and every check-site record.
    fn walk(&mut self, sites: &mut Sites) {
        let mut k = self.lo;
        while k < self.hi {
            let t = &self.toks[k];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "fn") => {
                    // Nested fns are indexed and analyzed separately.
                    if let Some(close) = self.fn_body_close(k) {
                        k = close + 1;
                        continue;
                    }
                }
                (TokKind::Ident, "let") => self.handle_let(sites, k),
                (TokKind::Ident, "if") | (TokKind::Ident, "while") => self.handle_guard(k),
                (TokKind::Ident, "for") | (TokKind::Ident, "loop") => self.handle_loop(k),
                (TokKind::Ident, "return") => {
                    let end = self.stmt_end(k + 1);
                    if end > k + 1 {
                        let v = self.eval(k + 1, end);
                        self.record_ret(sites, v, t.line, k + 1, end);
                    }
                }
                (TokKind::Ident, "as") => {
                    if self.toks.get(k + 1).is_some_and(|n| n.is_ident("f32")) {
                        let start = k.saturating_sub(3).max(self.lo);
                        sites.casts.push(CastSite {
                            fn_id: self.fn_id,
                            line: t.line,
                            in_test: t.in_test,
                            expr: render(self.toks, start, k + 2),
                        });
                    }
                }
                (TokKind::Ident, "loss_probs") => self.handle_loss_probs(sites, k),
                (TokKind::Ident, "ln")
                | (TokKind::Ident, "log")
                | (TokKind::Ident, "log2")
                | (TokKind::Ident, "log10")
                | (TokKind::Ident, "sqrt")
                | (TokKind::Ident, "recip") => self.handle_method_site(sites, k),
                (TokKind::Punct, "/") => self.handle_div(sites, k),
                (TokKind::Ident, _) => self.handle_assign(sites, k),
                (TokKind::Punct, "*") => {
                    // `*x += ..` / `*x = ..` deref-assignment.
                    let stmtish =
                        k == self.lo || matches!(self.toks[k - 1].text.as_str(), ";" | "{" | "}");
                    if stmtish
                        && self
                            .toks
                            .get(k + 1)
                            .is_some_and(|n| n.kind == TokKind::Ident)
                    {
                        self.handle_assign(sites, k + 1);
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }

    /// Skip a nested `fn` item's body: first `{` at paren depth 0.
    fn fn_body_close(&self, k: usize) -> Option<usize> {
        if self.toks.get(k + 1).map(|t| t.kind) != Some(TokKind::Ident) {
            return None;
        }
        let mut depth = 0i32;
        let mut j = k + 1;
        while j < self.hi {
            match self.toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return matching_close(self.toks, j),
                ";" if depth == 0 => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// End of the statement starting at `k`: first `;` at bracket depth 0.
    fn stmt_end(&self, k: usize) -> usize {
        let mut depth = 0i32;
        let mut j = k;
        while j < self.hi {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return j,
                _ => {}
            }
            if depth < 0 {
                return j;
            }
            j += 1;
        }
        self.hi
    }

    fn handle_let(&mut self, sites: &mut Sites, k: usize) {
        let mut i = k + 1;
        if self.toks.get(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        let Some(name_tok) = self.toks.get(i) else {
            return;
        };
        if name_tok.kind != TokKind::Ident || i + 1 >= self.hi {
            return;
        }
        // `let Some(x)` / `let (a, b)` destructuring patterns have a
        // `(` right after the (first) ident — skip them.
        if self.toks[i + 1].is_punct("(") {
            return;
        }
        let name = name_tok.text.clone();
        let end = self.stmt_end(k);
        // First `=` at depth 0 (with `==` excluded) is the assignment.
        let mut depth = 0i32;
        let mut eq = None;
        let mut j = k + 1;
        while j < end {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 => {
                    if !self.toks.get(j + 1).is_some_and(|n| n.is_punct("=")) {
                        eq = Some(j);
                        break;
                    }
                    j += 1;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else { return };
        let ty_float = self.toks[i + 1].is_punct(":")
            && self.toks[i + 2..eq]
                .iter()
                .any(|t| t.is_ident("f64") || t.is_ident("f32"));
        let mut val = self.eval(eq + 1, end);
        val.is_float |= ty_float;
        val.def = Some(name_tok.line);
        let lower = name.to_lowercase();
        // `probe`-named bindings (gradient probes etc.) are not
        // probabilities despite the shared prefix.
        if lower.contains("prob") && !lower.contains("probe") && !name_tok.in_test {
            sites.pbinds.push(ProbBind {
                fn_id: self.fn_id,
                line: name_tok.line,
                in_test: name_tok.in_test,
                name: name.clone(),
                val,
                has_arith: self.has_arith(eq + 1, end),
                has_guard: self.has_guard(eq + 1, end),
            });
        }
        self.env.insert(name, val);
    }

    /// Extract guard facts from an `if`/`while` condition.
    fn handle_guard(&mut self, k: usize) {
        let mut depth = 0i32;
        let mut open = None;
        let mut j = k + 1;
        while j < self.hi {
            match self.toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => return,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { return };
        let Some(close) = matching_close(self.toks, open) else {
            return;
        };
        if self.toks[k].is_ident("while") || self.toks[k].is_ident("loop") {
            self.loops.push((open + 1, close));
        }
        let c = k + 1;
        if c >= open || self.toks[c].is_ident("let") {
            return;
        }
        // `!xs.is_empty()` promotes `xs.len()` inside the block.
        if self.toks[c].is_punct("!")
            && self.cond_is_empty(c + 1, open)
            && self.toks[c + 1].kind == TokKind::Ident
        {
            self.len_pos
                .push((self.toks[c + 1].text.clone(), open + 1, close));
            return;
        }
        if self.toks[c].kind != TokKind::Ident {
            return;
        }
        let name = self.toks[c].text.clone();
        let early = self.block_exits_early(open, close);
        // `xs.is_empty()` + early exit promotes `xs.len()` afterwards.
        if self.cond_is_empty(c, open) {
            if early {
                self.len_pos.push((name, close + 1, self.hi));
            }
            return;
        }
        let Some(op) = self.toks.get(c + 1) else {
            return;
        };
        let eq_next = self.toks.get(c + 2).is_some_and(|t| t.is_punct("="));
        // `x <= 0 { return }` / `x < 0 { return }` — positive /
        // non-negative for the rest of the body.
        if op.is_punct("<") {
            let rhs_at = if eq_next { c + 3 } else { c + 2 };
            if rhs_at < open {
                let rhs = self.eval(rhs_at, open);
                if matches!(rhs.value, Some(v) if v.abs() < 1e-300) && early {
                    let dom = if eq_next {
                        Domain::Positive
                    } else {
                        Domain::NonNeg
                    };
                    self.guards.push((name, close + 1, self.hi, dom));
                }
            }
            return;
        }
        let (rhs_at, strict, is_cmp) = match op.text.as_str() {
            ">" if !eq_next => (c + 2, true, true),
            ">" => (c + 3, false, true),
            "!" if eq_next => (c + 3, true, false),
            "=" if eq_next => (c + 3, false, false),
            _ => return,
        };
        if rhs_at >= open {
            return;
        }
        let rhs = self.eval(rhs_at, open);
        if is_cmp {
            // `x > rhs` / `x >= rhs`
            let dom = if strict {
                if rhs.pos() {
                    Some(Domain::EpsGuarded)
                } else if rhs.ge0() {
                    Some(Domain::Positive)
                } else {
                    None
                }
            } else if rhs.pos() {
                Some(Domain::EpsGuarded)
            } else if rhs.ge0() {
                Some(Domain::NonNeg)
            } else {
                None
            };
            if let Some(dom) = dom {
                self.guards.push((name, open + 1, close, dom));
            }
        } else if matches!(rhs.value, Some(v) if v.abs() < 1e-300) {
            if strict {
                // `x != 0` — nonzero within the block (documented
                // over-approximation: promoted to Positive).
                self.guards.push((name, open + 1, close, Domain::Positive));
            } else if self.block_exits_early(open, close) {
                // `x == 0 { return/continue/break }` — nonzero after.
                self.guards
                    .push((name, close + 1, self.hi, Domain::Positive));
            }
        }
    }

    fn cond_is_empty(&self, c: usize, open: usize) -> bool {
        c + 2 < open
            && self.toks[c].kind == TokKind::Ident
            && self.toks[c + 1].is_punct(".")
            && self.toks[c + 2].is_ident("is_empty")
    }

    fn block_exits_early(&self, open: usize, close: usize) -> bool {
        self.toks[open + 1..close].iter().any(|t| {
            matches!(t.text.as_str(), "return" | "continue" | "break" | "panic")
                && t.kind == TokKind::Ident
        })
    }

    fn handle_loop(&mut self, k: usize) {
        if self.toks[k].is_ident("for")
            && self.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Ident)
            && self.toks.get(k + 2).is_some_and(|t| t.is_ident("in"))
        {
            // `for i in ..` — loop variables over ranges are ints.
            let mut v = Val::unknown();
            v.domain = Domain::NonNeg;
            self.env.insert(self.toks[k + 1].text.clone(), v);
        }
        let mut depth = 0i32;
        let mut j = k + 1;
        while j < self.hi {
            match self.toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    if let Some(close) = matching_close(self.toks, j) {
                        self.loops.push((j + 1, close));
                    }
                    return;
                }
                ";" if depth == 0 => return,
                _ => {}
            }
            j += 1;
        }
    }

    fn in_loop(&self, k: usize) -> bool {
        self.loops.iter().any(|&(s, e)| s <= k && k < e)
    }

    /// Assignment / compound-assignment at an ident: update the
    /// environment and record accumulation sites. Never consumes
    /// tokens — operand sites inside the rhs are found by the walker.
    fn handle_assign(&mut self, sites: &mut Sites, k: usize) {
        if k > self.lo {
            let p = &self.toks[k - 1];
            if p.is_punct(".") || p.is_punct("::") || p.is_ident("let") || p.is_ident("mut") {
                return;
            }
        }
        // Target: ident with optional `.field` / `[idx]` postfix.
        let base = self.toks[k].text.clone();
        if matches!(
            base.as_str(),
            "if" | "else" | "match" | "in" | "fn" | "use" | "pub" | "impl" | "struct" | "enum"
        ) {
            return;
        }
        let mut t_end = k + 1;
        loop {
            if t_end + 1 < self.hi
                && self.toks[t_end].is_punct(".")
                && self.toks[t_end + 1].kind == TokKind::Ident
                && !self.toks.get(t_end + 2).is_some_and(|n| n.is_punct("("))
            {
                t_end += 2;
            } else if self.toks[t_end].is_punct("[") {
                match matching_close(self.toks, t_end) {
                    Some(c) if c < self.hi => t_end = c + 1,
                    _ => return,
                }
            } else {
                break;
            }
        }
        let Some(op) = self.toks.get(t_end) else {
            return;
        };
        let eq_next = self.toks.get(t_end + 1).is_some_and(|n| n.is_punct("="));
        let eq2_next = self.toks.get(t_end + 2).is_some_and(|n| n.is_punct("="));
        let (rhs_at, kind) = match op.text.as_str() {
            "=" if !eq_next => (t_end + 1, '='),
            "+" if eq_next && !eq2_next => (t_end + 2, '+'),
            "-" if eq_next && !eq2_next => (t_end + 2, '-'),
            "*" if eq_next && !eq2_next => (t_end + 2, '*'),
            "/" if eq_next && !eq2_next => (t_end + 2, '/'),
            _ => return,
        };
        let end = self.stmt_end(rhs_at);
        if rhs_at >= end {
            return;
        }
        let rhs = self.eval(rhs_at, end);
        let simple = t_end == k + 1;
        let old = if simple {
            self.env.get(&base).copied().unwrap_or_else(Val::unknown)
        } else {
            Val::unknown()
        };
        let new = match kind {
            '=' => rhs,
            '+' => add(&old, &rhs),
            '-' => sub(&old, &rhs),
            '*' => mul(&old, &rhs),
            _ => div(&old, &rhs),
        };
        if simple {
            let mut new = new;
            new.def = self.env.get(&base).and_then(|v| v.def);
            self.env.insert(base.clone(), new);
        }
        // Accumulation: `x += rhs` or `x = x + rhs` inside a loop.
        let is_acc = kind == '+'
            || (kind == '='
                && self.toks[rhs_at].text == base
                && self.toks.get(rhs_at + 1).is_some_and(|n| n.is_punct("+")));
        if is_acc && self.in_loop(k) && (old.is_float || rhs.is_float) {
            sites.accs.push(AccSite {
                fn_id: self.fn_id,
                line: self.toks[k].line,
                in_test: self.toks[k].in_test,
                target: render(self.toks, k, t_end),
            });
        }
    }

    /// Binary `/` (or the `/` of `/=`): record the denominator.
    fn handle_div(&mut self, sites: &mut Sites, k: usize) {
        if k == self.lo {
            return;
        }
        let p = &self.toks[k - 1];
        let binary = matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
            || p.is_punct(")")
            || p.is_punct("]");
        if !binary {
            return;
        }
        let dstart = if self.toks.get(k + 1).is_some_and(|n| n.is_punct("=")) {
            k + 2
        } else {
            k + 1
        };
        let Some((s, e)) = self.operand_after(dstart) else {
            return;
        };
        let val = self.eval(s, e);
        sites.checks.push(CheckSite {
            kind: CheckKind::Div,
            fn_id: self.fn_id,
            line: self.toks[k].line,
            in_test: self.toks[k].in_test,
            expr: render(self.toks, s, e),
            val,
        });
    }

    /// `.ln()` / `.log*()` / `.sqrt()` / `.recip()` receiver checks.
    fn handle_method_site(&mut self, sites: &mut Sites, k: usize) {
        if k == self.lo || !self.toks[k - 1].is_punct(".") {
            return;
        }
        if !self.toks.get(k + 1).is_some_and(|n| n.is_punct("(")) {
            return;
        }
        let Some((rs, re)) = self.receiver_range(k - 1) else {
            return;
        };
        let kind = match self.toks[k].text.as_str() {
            "ln" => CheckKind::Ln,
            "sqrt" => CheckKind::Sqrt,
            "recip" => CheckKind::Recip,
            _ => CheckKind::Log,
        };
        let val = self.eval(rs, re);
        sites.checks.push(CheckSite {
            kind,
            fn_id: self.fn_id,
            line: self.toks[k].line,
            in_test: self.toks[k].in_test,
            expr: format!("{}.{}()", render(self.toks, rs, re), self.toks[k].text),
            val,
        });
    }

    fn handle_loss_probs(&mut self, sites: &mut Sites, k: usize) {
        if !self.toks.get(k + 1).is_some_and(|n| n.is_punct("(")) {
            return;
        }
        let Some(close) = matching_close(self.toks, k + 1) else {
            return;
        };
        let args = split_args(self.toks, k + 2, close);
        let Some(&(a0s, a0e)) = args.first() else {
            return;
        };
        let val = self.eval(a0s, a0e);
        sites.pcalls.push(ProbCall {
            fn_id: self.fn_id,
            line: self.toks[k].line,
            in_test: self.toks[k].in_test,
            arg: render(self.toks, a0s, a0e),
            val,
        });
    }

    fn record_ret(&mut self, sites: &mut Sites, v: Val, line: usize, s: usize, e: usize) {
        if self.item.name.starts_with("predict_proba") {
            sites.prets.push(ProbRet {
                fn_id: self.fn_id,
                line,
                in_test: self.item.in_test,
                val: v,
                has_arith: self.has_arith(s, e),
                has_guard: self.has_guard(s, e),
            });
        }
        self.rets.push(v);
    }

    /// Token range of the body's trailing expression (after the last
    /// top-level `;` or block close).
    fn tail_range(&self) -> Option<(usize, usize)> {
        let mut depth = 0i32;
        let mut start = self.lo;
        let mut j = self.lo;
        while j < self.hi {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    // A statement-level block (`if .. {}`, `match {}`,
                    // a plain block) ends any candidate tail; brace
                    // groups nested in parens do not.
                    if depth == 0 {
                        start = j + 1;
                    }
                }
                ";" if depth == 0 => start = j + 1,
                _ => {}
            }
            j += 1;
        }
        if start < self.hi {
            Some((start, self.hi))
        } else {
            None
        }
    }

    /// Per-line mixed-width scan: a body line mentioning both `f32`
    /// and `f64`.
    fn mixed_lines(&self, sites: &mut Sites) {
        let mut lines: BTreeMap<usize, (bool, bool, bool)> = BTreeMap::new();
        for t in &self.toks[self.lo..self.hi] {
            if t.kind != TokKind::Ident {
                continue;
            }
            let e = lines.entry(t.line).or_insert((false, false, t.in_test));
            match t.text.as_str() {
                "f32" => e.0 = true,
                "f64" => e.1 = true,
                _ => {}
            }
        }
        for (line, (a, b, in_test)) in lines {
            if a && b {
                sites.mixed.push(MixedSite {
                    fn_id: self.fn_id,
                    line,
                    in_test,
                });
            }
        }
    }

    fn has_arith(&self, s: usize, e: usize) -> bool {
        (s.max(self.lo + 1)..e.min(self.hi)).any(|j| {
            let t = &self.toks[j];
            if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "*" | "/") {
                return false;
            }
            let p = &self.toks[j - 1];
            // A keyword before the operator makes it a prefix (`return
            // *p`, `for x in -1..`), not arithmetic.
            (matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                && !matches!(p.text.as_str(), "return" | "in" | "if" | "else" | "match"))
                || p.is_punct(")")
                || p.is_punct("]")
        })
    }

    fn has_guard(&self, s: usize, e: usize) -> bool {
        self.toks[s..e.min(self.hi)]
            .iter()
            .any(|t| t.kind == TokKind::Ident && guard_method(&t.text))
    }

    /// Structural extent of the operand starting at `s` (prefixes,
    /// primary, postfix chain including `as <ty>`).
    fn operand_after(&self, s: usize) -> Option<(usize, usize)> {
        let mut k = s;
        while k < self.hi
            && (self.toks[k].is_punct("-")
                || self.toks[k].is_punct("*")
                || self.toks[k].is_punct("&")
                || self.toks[k].is_ident("mut"))
        {
            k += 1;
        }
        if k >= self.hi {
            return None;
        }
        match self.toks[k].kind {
            TokKind::Punct if self.toks[k].is_punct("(") => {
                k = matching_close(self.toks, k)?;
                k += 1;
            }
            TokKind::Ident | TokKind::Int | TokKind::Float => {
                k += 1;
                while k + 1 < self.hi
                    && self.toks[k].is_punct("::")
                    && self.toks[k + 1].kind == TokKind::Ident
                {
                    k += 2;
                }
            }
            _ => return None,
        }
        // Postfix chain.
        loop {
            if k >= self.hi {
                break;
            }
            if self.toks[k].is_punct(".")
                && self
                    .toks
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
            {
                let mut q = k + 2;
                if self.toks.get(q).is_some_and(|n| n.is_punct("::"))
                    && self.toks.get(q + 1).is_some_and(|n| n.is_punct("<"))
                {
                    q = self.skip_angles(q + 1)?;
                }
                if self.toks.get(q).is_some_and(|n| n.is_punct("(")) {
                    k = matching_close(self.toks, q)? + 1;
                } else {
                    k = k + 2;
                }
            } else if self.toks[k].is_punct("[") || self.toks[k].is_punct("(") {
                k = matching_close(self.toks, k)? + 1;
            } else if self.toks[k].is_punct("?") {
                k += 1;
            } else if self.toks[k].is_ident("as")
                && self
                    .toks
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
            {
                k += 2;
            } else {
                break;
            }
        }
        if k > s {
            Some((s, k.min(self.hi)))
        } else {
            None
        }
    }

    /// Skip a `<..>` generic/turbofish group starting at the `<`.
    fn skip_angles(&self, lt: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = lt;
        while j < self.hi {
            match self.toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Receiver extent `[start, dot)` of the method call whose `.` sits
    /// at `dot`, walking the postfix chain backward.
    fn receiver_range(&self, dot: usize) -> Option<(usize, usize)> {
        let mut j = dot;
        loop {
            if j <= self.lo {
                return None;
            }
            let t = &self.toks[j - 1];
            if t.is_punct(")") || t.is_punct("]") {
                let open = self.open_backward(j - 1)?;
                j = open;
                // `sum::<f64>()` — hop the turbofish back to the name.
                if j > self.lo + 2 && self.toks[j - 1].is_punct(">") {
                    let mut k = j - 1;
                    while k > self.lo && !self.toks[k].is_punct("<") {
                        k -= 1;
                    }
                    if k > self.lo && self.toks[k - 1].is_punct("::") {
                        j = k - 1;
                    }
                }
                if j > self.lo && self.toks[j - 1].kind == TokKind::Ident {
                    j -= 1;
                }
            } else if matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Float) {
                j -= 1;
            } else {
                return None;
            }
            if j > self.lo && (self.toks[j - 1].is_punct(".") || self.toks[j - 1].is_punct("::")) {
                j -= 1;
                continue;
            }
            return Some((j, dot));
        }
    }

    fn open_backward(&self, close: usize) -> Option<usize> {
        let (o, c) = match self.toks[close].text.as_str() {
            ")" => ("(", ")"),
            "]" => ("[", "]"),
            _ => return None,
        };
        let mut depth = 0i32;
        let mut j = close + 1;
        while j > self.lo {
            j -= 1;
            if self.toks[j].is_punct(c) {
                depth += 1;
            } else if self.toks[j].is_punct(o) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Expression evaluation.

    fn eval(&mut self, s: usize, e: usize) -> Val {
        let (mut s, mut e) = (s, e.min(self.hi));
        // Trim redundant outer parens.
        while s < e && self.toks[s].is_punct("(") && matching_close(self.toks, s) == Some(e - 1) {
            s += 1;
            e -= 1;
        }
        if s >= e {
            return Val::unknown();
        }
        // Top-level operator scan.
        let mut depth = 0i32;
        let mut class1 = None;
        let mut class2 = None;
        let mut as_pos = None;
        let mut j = s;
        while j < e {
            let t = &self.toks[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" if depth == 0 && j > s && self.toks[j - 1].is_punct("::") => {
                    // Turbofish — skip to its `>`.
                    match self.skip_angles(j) {
                        Some(after) if after <= e => {
                            j = after;
                            continue;
                        }
                        _ => return Val::unknown(),
                    }
                }
                "<" | ">" | "!" | "&" | "|" | ".." | "..=" | "," | "=" | "=>" | "->"
                    if depth == 0 && j > s =>
                {
                    let p = &self.toks[j - 1];
                    let binary = matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                        || p.is_punct(")")
                        || p.is_punct("]");
                    // `&` / `!` as a prefix is fine; anything binary
                    // here makes this a bool/range/tuple expression.
                    if binary || matches!(t.text.as_str(), ".." | "..=" | "," | "=>") {
                        return Val::unknown();
                    }
                }
                "+" | "-" if depth == 0 && j > s => {
                    let p = &self.toks[j - 1];
                    let binary = matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                        || p.is_punct(")")
                        || p.is_punct("]");
                    if binary {
                        class1 = Some(j);
                    }
                }
                "*" | "/" | "%" if depth == 0 && j > s => {
                    let p = &self.toks[j - 1];
                    let binary = matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                        || p.is_punct(")")
                        || p.is_punct("]");
                    if binary {
                        class2 = Some(j);
                    }
                }
                "as" if depth == 0 && t.kind == TokKind::Ident => as_pos = Some(j),
                _ => {}
            }
            j += 1;
        }
        if let Some(op) = class1 {
            let l = self.eval(s, op);
            let r = self.eval(op + 1, e);
            return if self.toks[op].is_punct("+") {
                add(&l, &r)
            } else {
                sub(&l, &r)
            };
        }
        if let Some(op) = class2 {
            let l = self.eval(s, op);
            let r = self.eval(op + 1, e);
            return match self.toks[op].text.as_str() {
                "*" => {
                    let mut v = mul(&l, &r);
                    // `x * x` — a square is non-negative whatever x is.
                    if render(self.toks, s, op) == render(self.toks, op + 1, e) {
                        v.domain = v.domain.max(Domain::NonNeg);
                    }
                    v
                }
                "/" => div(&l, &r),
                _ => Val {
                    is_float: l.is_float || r.is_float,
                    ..Val::unknown()
                },
            };
        }
        if let Some(ap) = as_pos {
            let base = self.eval(s, ap);
            return self.cast(base, ap + 1, e);
        }
        self.primary(s, e)
    }

    fn cast(&self, mut v: Val, ts: usize, te: usize) -> Val {
        let mut float = false;
        let mut unsigned = false;
        for t in &self.toks[ts..te.min(self.hi)] {
            match t.text.as_str() {
                "f64" | "f32" => float = true,
                "usize" | "u64" | "u32" | "u16" | "u8" => unsigned = true,
                _ => {}
            }
        }
        if float {
            v.is_float = true;
        } else if unsigned {
            // A wrapping cast of a negative is >= 0, but its folded
            // value is meaningless then.
            if !v.ge0() {
                v.value = None;
            }
            v.domain = v.domain.max(Domain::NonNeg);
            v.is_float = false;
        }
        v
    }

    fn primary(&mut self, s: usize, e: usize) -> Val {
        let mut i = s;
        let mut neg = false;
        while i < e {
            let t = &self.toks[i];
            if t.is_punct("&") || t.is_punct("*") || t.is_ident("mut") {
                i += 1;
            } else if t.is_punct("-") {
                neg = true;
                i += 1;
            } else {
                break;
            }
        }
        if i >= e {
            return Val::unknown();
        }
        let (mut val, mut p) = match self.toks[i].kind {
            TokKind::Float => {
                let v = parse_num(&self.toks[i])
                    .map(|v| of_const(v, true))
                    .unwrap_or_else(|| Val::float(Domain::NonNeg));
                (v, i + 1)
            }
            TokKind::Int => {
                let v = parse_num(&self.toks[i])
                    .map(|v| of_const(v, false))
                    .unwrap_or_else(|| {
                        let mut u = Val::unknown();
                        u.domain = Domain::NonNeg;
                        u
                    });
                (v, i + 1)
            }
            TokKind::Str => (Val::unknown(), i + 1),
            TokKind::Punct => {
                if self.toks[i].is_punct("(") {
                    match matching_close(self.toks, i) {
                        Some(close) if close < e => (self.eval(i + 1, close), close + 1),
                        _ => return Val::unknown(),
                    }
                } else {
                    return Val::unknown();
                }
            }
            TokKind::Ident => match self.ident_primary(i, e) {
                Some(r) => r,
                None => return Val::unknown(),
            },
        };
        // Postfix chain.
        let mut recv_ident: Option<(String, usize)> =
            if p == i + 1 && self.toks[i].kind == TokKind::Ident {
                Some((self.toks[i].text.clone(), i))
            } else {
                None
            };
        loop {
            if p >= e {
                break;
            }
            if self.toks[p].is_punct(".")
                && self
                    .toks
                    .get(p + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
            {
                let name_idx = p + 1;
                let mut q = p + 2;
                let mut tf_float = false;
                if self.toks.get(q).is_some_and(|n| n.is_punct("::"))
                    && self.toks.get(q + 1).is_some_and(|n| n.is_punct("<"))
                {
                    match self.skip_angles(q + 1) {
                        Some(after) => {
                            tf_float = self.toks[q + 1..after]
                                .iter()
                                .any(|t| t.is_ident("f64") || t.is_ident("f32"));
                            q = after;
                        }
                        None => break,
                    }
                }
                if self.toks.get(q).is_some_and(|n| n.is_punct("(")) {
                    match matching_close(self.toks, q) {
                        Some(close) if close <= e => {
                            val = self.method(val, &recv_ident, name_idx, q, close, tf_float);
                            p = close + 1;
                        }
                        _ => break,
                    }
                } else {
                    // Field access or tuple index: unknown contents.
                    val = Val::unknown();
                    p += 2;
                }
                recv_ident = None;
            } else if self.toks[p].is_punct("[") {
                // Indexing keeps the collection's elementwise value.
                match matching_close(self.toks, p) {
                    Some(close) if close <= e => p = close + 1,
                    _ => break,
                }
            } else if self.toks[p].is_punct("?") {
                p += 1;
            } else if self.toks[p].is_punct("(") {
                match matching_close(self.toks, p) {
                    Some(close) if close <= e => {
                        val = Val::unknown();
                        p = close + 1;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        if neg {
            val = negate(&val);
        }
        val
    }

    /// Ident-led primary: paths, calls, consts, env lookups, macros.
    /// Returns the value and the position after the consumed tokens.
    fn ident_primary(&mut self, i: usize, e: usize) -> Option<(Val, usize)> {
        let first = &self.toks[i];
        if matches!(
            first.text.as_str(),
            "if" | "match" | "unsafe" | "loop" | "while" | "for" | "move" | "return" | "break"
        ) {
            return Some((Val::unknown(), e));
        }
        // Collect the `::` path.
        let mut segs = vec![i];
        let mut j = i + 1;
        while j + 1 < e && self.toks[j].is_punct("::") && self.toks[j + 1].kind == TokKind::Ident {
            segs.push(j + 1);
            j += 2;
        }
        let last = *segs.last()?;
        let name = self.toks[last].text.as_str();
        // Macro call: `name!(..)` — opaque.
        if self.toks.get(j).is_some_and(|n| n.is_punct("!")) {
            let open = j + 1;
            if self
                .toks
                .get(open)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                if let Some(close) = matching_close(self.toks, open) {
                    return Some((Val::unknown(), close + 1));
                }
            }
            return Some((Val::unknown(), e));
        }
        // Turbofish before a call.
        if self.toks.get(j).is_some_and(|n| n.is_punct("::"))
            && self.toks.get(j + 1).is_some_and(|n| n.is_punct("<"))
        {
            j = self.skip_angles(j + 1)?;
        }
        if self.toks.get(j).is_some_and(|n| n.is_punct("(")) {
            // Free/associated call.
            let close = matching_close(self.toks, j)?;
            if SIGMOID_FAMILY.contains(&name) {
                let mut v = Val::float(Domain::NonNeg);
                v.p01 = true;
                return Some((v, close + 1));
            }
            if name == "softplus" {
                return Some((Val::float(Domain::NonNeg), close + 1));
            }
            if let Some(&callee) = self.site_map.get(&(self.file, last)) {
                let mut v = self.summaries[callee];
                v.is_float |= self.fns[callee].returns_float;
                v.def = None;
                return Some((v, close + 1));
            }
            return Some((Val::unknown(), close + 1));
        }
        // Non-call path.
        if segs.len() >= 2 {
            let head = self.toks[segs[0]].text.as_str();
            if matches!(head, "f64" | "f32") && matches!(name, "EPSILON" | "MIN_POSITIVE") {
                return Some((Val::float(Domain::EpsGuarded), j));
            }
            if matches!(head, "f64" | "f32") && name == "MAX" {
                return Some((Val::float(Domain::Positive), j));
            }
            return Some((Val::unknown(), j));
        }
        if let Some(&(v, isf)) = self.consts.get(name) {
            return Some((of_const(v, isf), j));
        }
        if name.contains("EPS") && name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            return Some((Val::float(Domain::EpsGuarded), j));
        }
        Some((self.lookup(name, i), j))
    }

    /// Environment lookup with guard-region promotion at position `at`.
    fn lookup(&self, name: &str, at: usize) -> Val {
        let mut v = self.env.get(name).copied().unwrap_or_else(Val::unknown);
        for (g, gs, ge, dom) in &self.guards {
            if g == name && *gs <= at && at < *ge && *dom > v.domain {
                v.domain = *dom;
            }
        }
        v
    }

    /// Builtin method transfers (std float/collection methods the call
    /// graph deliberately does not resolve).
    fn method(
        &mut self,
        recv: Val,
        recv_ident: &Option<(String, usize)>,
        name_idx: usize,
        open: usize,
        close: usize,
        tf_float: bool,
    ) -> Val {
        let name = self.toks[name_idx].text.clone();
        if SIGMOID_FAMILY.contains(&name.as_str()) {
            let mut v = Val::float(Domain::NonNeg);
            v.p01 = true;
            return v;
        }
        // Workspace-resolved callee wins: its summary is the truth.
        if let Some(&callee) = self.site_map.get(&(self.file, name_idx)) {
            let mut v = self.summaries[callee];
            v.is_float |= self.fns[callee].returns_float;
            v.def = None;
            return v;
        }
        let args = split_args(self.toks, open + 1, close);
        let arg = |fl: &mut Self, n: usize| -> Val {
            match args.get(n) {
                Some(&(s, e)) => fl.eval(s, e),
                None => Val::unknown(),
            }
        };
        match name.as_str() {
            "max" => {
                let a = arg(self, 0);
                Val {
                    domain: recv.domain.max(a.domain),
                    p01: recv.p01 && a.p01,
                    lt_one: recv.lt_one && a.lt_one,
                    is_float: recv.is_float || a.is_float,
                    value: fold2(&recv, &a, f64::max),
                    def: recv.def,
                }
            }
            "min" => {
                let a = arg(self, 0);
                Val {
                    domain: recv.domain.min(a.domain),
                    p01: recv.ge0() && a.ge0() && (recv.p01 || a.p01),
                    lt_one: recv.lt_one || a.lt_one,
                    is_float: recv.is_float || a.is_float,
                    value: fold2(&recv, &a, f64::min),
                    def: recv.def,
                }
            }
            "abs" => Val {
                domain: recv.domain.max(Domain::NonNeg),
                p01: recv.p01,
                lt_one: recv.p01 && recv.lt_one,
                is_float: true,
                value: recv.value.map(f64::abs),
                def: recv.def,
            },
            "exp" => Val {
                // Documented over-approximation: e^x underflows to 0
                // only for x < ~-745.
                domain: Domain::Positive,
                p01: false,
                lt_one: false,
                is_float: true,
                value: recv.value.map(f64::exp),
                def: recv.def,
            },
            "sqrt" => Val {
                domain: if recv.pos() {
                    recv.domain
                } else if recv.ge0() {
                    Domain::NonNeg
                } else {
                    Domain::Unknown
                },
                p01: recv.p01,
                lt_one: recv.p01 && recv.lt_one,
                is_float: true,
                value: recv.value.filter(|v| *v >= 0.0).map(f64::sqrt),
                def: recv.def,
            },
            "clamp" => {
                let lo = arg(self, 0);
                let hi = arg(self, 1);
                let hi_le_one = hi.p01 || matches!(hi.value, Some(v) if v <= 1.0);
                Val {
                    domain: if lo.pos() {
                        lo.domain
                    } else if lo.ge0() {
                        Domain::NonNeg
                    } else {
                        Domain::Unknown
                    },
                    p01: lo.ge0() && hi_le_one,
                    lt_one: hi.lt_one || matches!(hi.value, Some(v) if v < 1.0),
                    is_float: true,
                    value: match (recv.value, lo.value, hi.value) {
                        (Some(v), Some(l), Some(h)) if l <= h => Some(v.clamp(l, h)),
                        _ => None,
                    },
                    def: recv.def,
                }
            }
            "recip" => Val {
                domain: if recv.pos() {
                    Domain::Positive
                } else {
                    Domain::Unknown
                },
                is_float: true,
                ..Val::unknown()
            },
            "powi" | "powf" => {
                let a = arg(self, 0);
                let even = matches!(a.value, Some(v) if v.rem_euclid(2.0) < 0.25);
                let domain = if recv.pos() {
                    Domain::Positive
                } else if recv.ge0() || (name == "powi" && even) {
                    Domain::NonNeg
                } else {
                    Domain::Unknown
                };
                Val {
                    domain,
                    p01: recv.p01,
                    lt_one: recv.p01 && recv.lt_one,
                    is_float: true,
                    value: None,
                    def: recv.def,
                }
            }
            "ln" | "log" | "log2" | "log10" => Val {
                is_float: true,
                ..Val::unknown()
            },
            "floor" | "ceil" | "round" | "trunc" => Val {
                domain: if recv.ge0() {
                    Domain::NonNeg
                } else {
                    Domain::Unknown
                },
                is_float: true,
                ..Val::unknown()
            },
            "len" | "count" => {
                let mut v = Val::unknown();
                v.domain = Domain::NonNeg;
                if let Some((rname, _)) = recv_ident {
                    if self
                        .len_pos
                        .iter()
                        .any(|(n, s, e)| n == rname && *s <= name_idx && name_idx < *e)
                    {
                        v.domain = Domain::EpsGuarded;
                    }
                }
                v
            }
            "sum" | "product" => Val {
                domain: if name == "product" && recv.pos() {
                    Domain::Positive
                } else if recv.ge0() {
                    Domain::NonNeg
                } else {
                    Domain::Unknown
                },
                p01: name == "product" && recv.p01,
                lt_one: false,
                is_float: recv.is_float || tf_float,
                value: None,
                def: None,
            },
            // Transparent wrappers: the elementwise value flows through.
            "iter" | "into_iter" | "iter_mut" | "data" | "as_slice" | "to_vec" | "clone"
            | "copied" | "cloned" | "collect" | "take" | "skip" | "rev" => recv,
            "map" => self.map_transfer(recv, &args),
            _ => Val::unknown(),
        }
    }

    /// `.map(f)`: evaluate a one-parameter closure body with the
    /// parameter bound to the receiver's elementwise value, or match a
    /// bare sigmoid-family fn reference.
    fn map_transfer(&mut self, recv: Val, args: &[(usize, usize)]) -> Val {
        let Some(&(s, e)) = args.first() else {
            return Val::unknown();
        };
        if e == s + 1
            && self.toks[s].kind == TokKind::Ident
            && SIGMOID_FAMILY.contains(&self.toks[s].text.as_str())
        {
            let mut v = Val::float(Domain::NonNeg);
            v.p01 = true;
            return v;
        }
        // `|x| body` (optionally `|&x|` / `|&mut x|`).
        if !self.toks[s].is_punct("|") {
            return Val::unknown();
        }
        let mut pi = s + 1;
        while pi < e && (self.toks[pi].is_punct("&") || self.toks[pi].is_ident("mut")) {
            pi += 1;
        }
        if pi + 1 >= e || self.toks[pi].kind != TokKind::Ident || !self.toks[pi + 1].is_punct("|") {
            return Val::unknown();
        }
        let pname = self.toks[pi].text.clone();
        let saved = self.env.get(&pname).copied();
        self.env.insert(pname.clone(), recv);
        let v = self.eval(pi + 2, e);
        match saved {
            Some(old) => {
                self.env.insert(pname, old);
            }
            None => {
                self.env.remove(&pname);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::AnalyzedFile;
    use crate::source::SourceFile;

    fn flow_of(files: &[(&str, &str)]) -> (CallGraph, FloatFlow) {
        let ctx = Context {
            files: files
                .iter()
                .map(|(p, s)| {
                    let source = SourceFile::parse(p, s);
                    let tokens = lex(&source);
                    AnalyzedFile { source, tokens }
                })
                .collect(),
        };
        let graph = CallGraph::build(&ctx);
        let flow = FloatFlow::build(&ctx, &graph);
        (graph, flow)
    }

    fn summary_of(graph: &CallGraph, flow: &FloatFlow, name: &str) -> Val {
        let id = graph
            .index
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("missing fn {name}"));
        flow.summaries[id]
    }

    #[test]
    fn literals_and_eps_idioms_seed_the_lattice() {
        let (g, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn lit() -> f64 { 1.5 }\n\
             pub fn guarded(x: f64) -> f64 { x.max(1e-9) }\n\
             pub fn absd(x: f64) -> f64 { x.abs() }\n\
             pub fn expd(x: f64) -> f64 { x.exp() }\n",
        )]);
        assert_eq!(summary_of(&g, &f, "lit").domain, Domain::EpsGuarded);
        assert!(matches!(summary_of(&g, &f, "lit").value, Some(v) if about(v, 1.5)));
        assert_eq!(summary_of(&g, &f, "guarded").domain, Domain::EpsGuarded);
        assert_eq!(summary_of(&g, &f, "absd").domain, Domain::NonNeg);
        assert_eq!(summary_of(&g, &f, "expd").domain, Domain::Positive);
    }

    #[test]
    fn clamp_and_complement_prove_bce_log_arguments() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "const PROB_EPS: f64 = 1e-12;\n\
             pub fn bce(p: f64) -> f64 {\n\
                 let pc = p.clamp(PROB_EPS, 1.0 - PROB_EPS);\n\
                 pc.ln() + (1.0 - pc).ln()\n\
             }\n",
        )]);
        let lns: Vec<&CheckSite> = f
            .sites
            .checks
            .iter()
            .filter(|c| c.kind == CheckKind::Ln)
            .collect();
        assert_eq!(lns.len(), 2, "{:?}", f.sites.checks);
        for site in lns {
            assert!(site.val.pos(), "ln receiver should be proven: {site:?}");
        }
    }

    #[test]
    fn sigmoid_family_is_prob01_and_division_guards_resolve() {
        let (g, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn head(z: f64) -> f64 { sigmoid(z) }\n\
             pub fn ratio(a: f64, b: f64) -> f64 { a / b }\n\
             pub fn safe(a: f64, b: f64) -> f64 { a / b.max(1e-9) }\n",
        )]);
        let head = summary_of(&g, &f, "head");
        assert!(head.p01 && head.ge0());
        let divs: Vec<&CheckSite> = f
            .sites
            .checks
            .iter()
            .filter(|c| c.kind == CheckKind::Div)
            .collect();
        assert_eq!(divs.len(), 2);
        let unsafe_div = divs.iter().find(|c| c.expr == "b").expect("b site");
        assert!(!unsafe_div.val.pos() && unsafe_div.val.is_float);
        let safe_div = divs
            .iter()
            .find(|c| c.expr.contains("max"))
            .expect("max site");
        assert!(safe_div.val.pos());
    }

    #[test]
    fn comparison_guards_promote_within_the_branch() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn g(x: f64, y: f64) -> f64 {\n\
                 if x > 0.0 { return y / x; }\n\
                 let z = y / x;\n\
                 z\n\
             }\n",
        )]);
        let divs: Vec<&CheckSite> = f
            .sites
            .checks
            .iter()
            .filter(|c| c.kind == CheckKind::Div)
            .collect();
        assert_eq!(divs.len(), 2, "{:?}", f.sites.checks);
        assert!(divs[0].val.pos(), "guarded branch: {:?}", divs[0]);
        assert!(!divs[1].val.pos(), "unguarded tail: {:?}", divs[1]);
    }

    #[test]
    fn early_exit_zero_guard_promotes_the_rest_of_the_body() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn mean(total: f64, n: usize) -> f64 {\n\
                 if n == 0 { return 0.0; }\n\
                 total / n as f64\n\
             }\n",
        )]);
        let div = f
            .sites
            .checks
            .iter()
            .find(|c| c.kind == CheckKind::Div)
            .expect("div site");
        assert!(div.val.pos(), "n is nonzero after the early exit: {div:?}");
        assert!(div.val.is_float, "as f64 cast marks float: {div:?}");
    }

    #[test]
    fn summaries_propagate_through_calls() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn eps_floor(x: f64) -> f64 { x.max(1e-9) }\n\
             pub fn user(a: f64, b: f64) -> f64 { a / eps_floor(b) }\n",
        )]);
        let div = f
            .sites
            .checks
            .iter()
            .find(|c| c.kind == CheckKind::Div)
            .expect("div site");
        assert!(
            div.val.pos(),
            "callee summary proves the denominator: {div:?}"
        );
    }

    #[test]
    fn map_closures_and_sum_prove_the_softmax_idiom() {
        let (g, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn norm(xs: f64) -> f64 {\n\
                 let exps = xs.iter().map(|x| x.exp()).collect();\n\
                 let total = exps.iter().sum::<f64>().max(1e-300);\n\
                 exps[0] / total\n\
             }\n",
        )]);
        let div = f
            .sites
            .checks
            .iter()
            .find(|c| c.kind == CheckKind::Div)
            .expect("div site");
        assert!(div.val.pos(), "eps-floored sum: {div:?}");
        assert_eq!(summary_of(&g, &f, "norm").domain, Domain::Positive);
    }

    #[test]
    fn prob_bindings_and_loss_probs_args_are_recorded() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn t(z: f64, raw: f64, l: WeightedBce) -> f64 {\n\
                 let probs = z.map(stable_sigmoid);\n\
                 let prob_bad = raw * 2.0;\n\
                 l.loss_probs(&probs, raw)\n\
             }\n",
        )]);
        let good = f
            .sites
            .pbinds
            .iter()
            .find(|b| b.name == "probs")
            .expect("probs bind");
        assert!(good.val.p01);
        let bad = f
            .sites
            .pbinds
            .iter()
            .find(|b| b.name == "prob_bad")
            .expect("prob_bad bind");
        assert!(!bad.val.p01 && bad.has_arith && !bad.has_guard);
        let call = f.sites.pcalls.first().expect("loss_probs call");
        assert!(call.val.p01, "sigmoid output flows in: {call:?}");
    }

    #[test]
    fn accumulation_loops_and_casts_are_inventoried() {
        let (g, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn rogue(xs: f64) -> f64 {\n\
                 let mut acc = 0.0;\n\
                 for x in xs { acc += x; }\n\
                 acc\n\
             }\n\
             pub fn narrowed(x: f64) -> f64 { let y = x as f32; y as f64 }\n",
        )]);
        let acc = f.sites.accs.first().expect("acc site");
        assert_eq!(acc.target, "acc");
        assert_eq!(g.index.fns[acc.fn_id].name, "rogue");
        let cast = f.sites.casts.first().expect("cast site");
        assert!(cast.expr.contains("as f32"), "{cast:?}");
    }

    #[test]
    fn len_guard_promotes_division_by_len() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn mean(xs: f64, total: f64) -> f64 {\n\
                 if xs.is_empty() { return 0.0; }\n\
                 total / xs.len() as f64\n\
             }\n",
        )]);
        let div = f
            .sites
            .checks
            .iter()
            .find(|c| c.kind == CheckKind::Div)
            .expect("div site");
        assert!(div.val.pos(), "len of proven-non-empty: {div:?}");
    }

    #[test]
    fn defining_site_travels_with_the_binding() {
        let (_, f) = flow_of(&[(
            "crates/nn/src/a.rs",
            "pub fn g(rows: usize) -> f64 {\n\
                 let n = rows as f64;\n\
                 1.0 / n\n\
             }\n",
        )]);
        let div = f
            .sites
            .checks
            .iter()
            .find(|c| c.kind == CheckKind::Div)
            .expect("div site");
        assert!(!div.val.pos());
        assert_eq!(div.val.def, Some(2), "defined at the let: {div:?}");
    }

    #[test]
    fn dot_rendering_lists_inventory_and_domains() {
        let (g, f) = flow_of(&[(
            "crates/core/src/a.rs",
            "impl Retina {\n\
                 pub fn forward(&self) -> f64 { self.step() }\n\
                 fn step(&self) -> f64 {\n\
                     let mut s = 0.0;\n\
                     for x in self.xs() { s += x; }\n\
                     s.max(1e-9)\n\
                 }\n\
             }\n",
        )]);
        let (_, reach) = hot_reach(&g);
        let dot = f.to_dot(&g, &reach);
        assert!(dot.contains("digraph floatflow"));
        assert!(dot.contains("float accumulation loops: 1"), "{dot}");
        assert!(dot.contains(">=eps"), "summary label rendered: {dot}");
        assert!(
            dot.contains("\"core::Retina::forward\" -> \"core::Retina::step\""),
            "{dot}"
        );
    }
}
