//! Corpus-level invariants across generator configurations. Randomized
//! cases are drawn from seeded loops (the registry is offline, so
//! `proptest` is replaced by explicit case enumeration — same invariants).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socialsim::{Dataset, SimConfig};

fn tiny_with(seed: u64, scale: f64, users: usize) -> Dataset {
    Dataset::generate(SimConfig {
        seed,
        tweet_scale: scale,
        n_users: users,
        ..SimConfig::tiny()
    })
}

/// Structural invariants hold for any seed / small scale.
#[test]
fn corpus_invariants_hold() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DE ^ case);
        let seed = rng.gen_range(0..10_000u64);
        let users = rng.gen_range(150usize..400);
        let data = tiny_with(seed, 0.02, users);
        let span = data.config().span_hours();
        for t in data.tweets() {
            // Times within the window.
            assert!(t.time_hours >= 0.0 && t.time_hours <= span);
            // Retweets strictly after the root, sorted, by valid users,
            // never by the author.
            let mut last = t.time_hours;
            for r in &t.retweets {
                assert!(r.time_hours > t.time_hours);
                assert!(r.time_hours >= last);
                assert!((r.user as usize) < users);
                assert!(r.user as usize != t.user);
                last = r.time_hours;
            }
            // Tokens non-empty, topic valid.
            assert!(!t.tokens.is_empty());
            assert!(t.topic < data.roster().len());
            assert!(t.user < users);
        }
        // Cascade cap respected.
        let max = data
            .tweets()
            .iter()
            .map(|t| t.retweets.len())
            .max()
            .unwrap_or(0);
        assert!(max <= data.config().max_retweets);
    }
}

/// No cascade contains the same retweeter twice.
#[test]
fn retweeters_unique() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ case);
        let seed = rng.gen_range(0..10_000u64);
        let data = tiny_with(seed, 0.02, 200);
        for t in data.tweets() {
            let mut users: Vec<u32> = t.retweets.iter().map(|r| r.user).collect();
            users.sort_unstable();
            let before = users.len();
            users.dedup();
            assert_eq!(users.len(), before);
        }
    }
}

#[test]
fn different_seeds_give_different_corpora() {
    let a = tiny_with(1, 0.02, 200);
    let b = tiny_with(2, 0.02, 200);
    let ta: Vec<&Vec<String>> = a.tweets().iter().take(20).map(|t| &t.tokens).collect();
    let tb: Vec<&Vec<String>> = b.tweets().iter().take(20).map(|t| &t.tokens).collect();
    assert_ne!(ta, tb, "seeds must matter");
}

#[test]
fn hashtag_targets_hit_exactly_at_any_scale() {
    for scale in [0.02, 0.05] {
        let data = tiny_with(7, scale, 250);
        for s in data.hashtag_stats() {
            let expect = data.roster().scaled_tweets(s.topic, scale);
            assert_eq!(s.tweets, expect);
        }
    }
}

#[test]
fn news_stream_is_chronological_and_tokenized() {
    let data = tiny_with(9, 0.02, 200);
    let mut last = 0.0;
    for n in data.news() {
        assert!(n.time_hours >= last);
        assert!(!n.tokens.is_empty());
        last = n.time_hours;
    }
}

#[test]
fn lexicon_terms_actually_appear_in_hateful_text() {
    let data = tiny_with(11, 0.05, 300);
    let lex = text::HateLexicon::new(&data.lexicon_terms());
    let mut hate_hits = 0usize;
    let mut hate_total = 0usize;
    for t in data.tweets().iter().filter(|t| t.hate) {
        hate_total += 1;
        if lex.total_hits(&t.tokens) > 0 {
            hate_hits += 1;
        }
    }
    assert!(hate_total > 0);
    assert!(
        hate_hits as f64 / hate_total as f64 > 0.9,
        "hateful tweets should carry lexicon terms ({hate_hits}/{hate_total})"
    );
}
