//! User profiles with topic-dependent hate propensity.
//!
//! Two empirical facts from the paper shape this module:
//!
//! 1. "such users [hate preachers] are often a very small fraction of the
//!    total users but generate a sizeable portion of the content"
//!    (Section I, citing Mathew et al.) — so `base_hate` is zero for most
//!    users and large for a small tail.
//! 2. "the degree of hatefulness expressed by a user is dependent on the
//!    topic as well" (Fig. 3) — so a user's effective hatefulness is
//!    `base_hate × theme_preference[theme]`, with the theme preference a
//!    sparse profile: a user hateful about one theme is often neutral on
//!    others.

use crate::topics::{Theme, Topic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All themes, in a fixed order for indexing.
pub const ALL_THEMES: [Theme; 8] = [
    Theme::Jamia,
    Theme::DelhiRiots,
    Theme::Election,
    Theme::Covid,
    Theme::Protest,
    Theme::Media,
    Theme::Verdict,
    Theme::Politics,
];

/// Index of a theme in [`ALL_THEMES`].
pub fn theme_index(theme: Theme) -> usize {
    ALL_THEMES.iter().position(|&t| t == theme).unwrap()
}

/// A synthetic user.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Dense user id (aligned with the follower graph).
    pub id: usize,
    /// Tweets per day propensity (heavy-tailed).
    pub activity_rate: f64,
    /// Baseline hatefulness in [0, 1]; ~0 for most users.
    pub base_hate: f64,
    /// Per-theme engagement affinity (sums to 1).
    pub theme_affinity: [f64; 8],
    /// Per-theme hate preference in [0, 1] (sparse: hate is topical).
    pub theme_hate_pref: [f64; 8],
    /// Day (0-based) the account was created, possibly negative
    /// (before the observation window).
    pub created_day: f64,
}

impl UserProfile {
    /// Relative (uncalibrated) hatefulness of this user on a topic.
    pub fn hate_weight(&self, topic: &Topic) -> f64 {
        self.base_hate * self.theme_hate_pref[theme_index(topic.theme)]
    }

    /// Relative probability that this user tweets on a topic.
    pub fn topic_weight(&self, topic: &Topic) -> f64 {
        self.theme_affinity[theme_index(topic.theme)]
    }
}

/// Generate `n` user profiles.
pub fn generate_users(n: usize, n_days: usize, seed: u64) -> Vec<UserProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            // Heavy-tailed activity: Pareto-like via inverse transform.
            let u: f64 = rng.gen_range(0.001..1.0);
            let activity_rate = (0.08 / u.powf(0.8)).min(6.0);

            // ~8% of users carry non-trivial hate; among them, intensity
            // is beta-shaped towards moderate values with a hateful tail.
            let base_hate = if rng.gen_bool(0.08) {
                let a: f64 = rng.gen_range(0.0f64..1.0).max(rng.gen_range(0.0..1.0));
                0.3 + 0.7 * a
            } else if rng.gen_bool(0.10) {
                rng.gen_range(0.0..0.15)
            } else {
                0.0
            };

            // Theme affinity: exponential weights over 2-4 themes.
            let mut theme_affinity = [0.0f64; 8];
            let k = rng.gen_range(2..=4);
            for _ in 0..k {
                let t = rng.gen_range(0..8);
                theme_affinity[t] += -(rng.gen_range(0.0001f64..1.0)).ln();
            }
            let sum: f64 = theme_affinity.iter().sum();
            for a in &mut theme_affinity {
                *a /= sum;
            }

            // Hate preference: concentrated on 1-2 themes the user also
            // engages with (hate follows attention).
            let mut theme_hate_pref = [0.0f64; 8];
            if base_hate > 0.0 {
                let mut themed: Vec<usize> = (0..8).collect();
                themed.sort_by(|&a, &b| theme_affinity[b].partial_cmp(&theme_affinity[a]).unwrap());
                let n_hate_themes = rng.gen_range(1..=2);
                for &t in themed.iter().take(n_hate_themes) {
                    theme_hate_pref[t] = rng.gen_range(0.5..1.0);
                }
                // Faint leakage elsewhere.
                for p in &mut theme_hate_pref {
                    // lint: allow(float-cmp) 0.0 is the exact "unset" sentinel written above
                    if *p == 0.0 && rng.gen_bool(0.15) {
                        *p = rng.gen_range(0.0..0.2);
                    }
                }
            }

            let created_day = rng.gen_range(-2000.0..(n_days as f64) * 0.5);
            UserProfile {
                id,
                activity_rate,
                base_hate,
                theme_affinity,
                theme_hate_pref,
                created_day,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topics::TopicRoster;

    #[test]
    fn affinities_sum_to_one() {
        let users = generate_users(200, 71, 0);
        for u in &users {
            let s: f64 = u.theme_affinity.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hate_is_a_small_fraction() {
        let users = generate_users(2000, 71, 1);
        let hateful = users.iter().filter(|u| u.base_hate > 0.3).count();
        let frac = hateful as f64 / users.len() as f64;
        assert!(
            (0.03..0.15).contains(&frac),
            "hateful-user fraction {frac} out of expected band"
        );
    }

    #[test]
    fn hate_is_topic_dependent() {
        // A hateful user should have at least one theme with much higher
        // hate preference than another (Fig. 3's heterogeneity).
        let users = generate_users(2000, 71, 2);
        let mut found = false;
        for u in &users {
            if u.base_hate > 0.3 {
                let max = u.theme_hate_pref.iter().cloned().fold(0.0, f64::max);
                let min = u.theme_hate_pref.iter().cloned().fold(1.0, f64::min);
                if max > 0.5 && min < 0.1 {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "no user with topic-concentrated hate found");
    }

    #[test]
    fn hate_weight_combines_base_and_theme() {
        let roster = TopicRoster::paper_roster();
        let users = generate_users(500, 71, 3);
        let hateful = users.iter().find(|u| u.base_hate > 0.3).unwrap();
        let weights: Vec<f64> = roster.iter().map(|t| hateful.hate_weight(t)).collect();
        assert!(weights.iter().any(|&w| w > 0.0));
        // A user with base_hate 0 has zero weight everywhere.
        let peaceful = users.iter().find(|u| u.base_hate == 0.0).unwrap();
        assert!(roster.iter().all(|t| peaceful.hate_weight(t) == 0.0));
    }

    #[test]
    fn activity_heavy_tailed() {
        let users = generate_users(2000, 71, 4);
        let mean: f64 = users.iter().map(|u| u.activity_rate).sum::<f64>() / users.len() as f64;
        let max = users.iter().map(|u| u.activity_rate).fold(0.0, f64::max);
        assert!(max > 4.0 * mean, "activity max {max} vs mean {mean}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_users(50, 71, 9);
        let b = generate_users(50, 71, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.base_hate, y.base_hate);
            assert_eq!(x.theme_affinity, y.theme_affinity);
        }
    }
}
