//! The information network `G = {U, E}` of Section III: a directed graph
//! with an edge `(u_i, u_j)` iff `u_j` follows `u_i` (so information flows
//! along the edge direction).
//!
//! The generator combines preferential attachment (yielding the heavy-
//! tailed follower distribution real Twitter exhibits) with planted
//! community blocks (yielding the echo-chambers that hate diffusion
//! concentrates in, per Fig. 1 and Section I).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed follower graph in compressed sparse row form.
///
/// Terminology: if `v follows u` then `u -> v` is an edge; `followers(u)`
/// are the users who see `u`'s tweets, `followees(v)` are the users `v`
/// sees.
#[derive(Debug, Clone)]
pub struct FollowerGraph {
    n: usize,
    /// CSR over followers: `followers_adj[followers_off[u]..followers_off[u+1]]`.
    followers_off: Vec<usize>,
    followers_adj: Vec<u32>,
    /// CSR over followees (reverse direction).
    followees_off: Vec<usize>,
    followees_adj: Vec<u32>,
    /// Community id per user.
    community: Vec<u16>,
}

impl FollowerGraph {
    /// Generate a graph with `n` users, `m` follow-links per user,
    /// `n_communities` planted blocks and `affinity` probability of
    /// linking within one's own community; preferential attachment on the
    /// follower counts produces a heavy-tailed degree distribution.
    pub fn generate(n: usize, m: usize, n_communities: usize, affinity: f64, seed: u64) -> Self {
        Self::generate_with_hate_core(n, m, n_communities, affinity, &vec![false; n], seed)
    }

    /// Like [`FollowerGraph::generate`], but plants a *hate core*: the
    /// flagged users allocate most of their follow links to each other
    /// (a dense, partially cross-community sub-network — hate campaigns
    /// transcend ordinary community boundaries), while ordinary users
    /// rarely follow them (hateful accounts are marginal in the organic
    /// graph). This produces the paper's echo-chambers: hateful content
    /// reaches a well-connected audience whose follower sets overlap, so
    /// large hate cascades still expose *few* fresh susceptible users
    /// (Fig. 1b).
    pub fn generate_with_hate_core(
        n: usize,
        m: usize,
        n_communities: usize,
        affinity: f64,
        hateful: &[bool],
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "need at least two users");
        assert_eq!(hateful.len(), n);
        let n_communities = n_communities.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let community: Vec<u16> = (0..n)
            .map(|_| rng.gen_range(0..n_communities) as u16)
            .collect();
        // Members per community for targeted sampling.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_communities];
        for (u, &c) in community.iter().enumerate() {
            members[c as usize].push(u as u32);
        }
        let hate_pool: Vec<u32> = (0..n as u32).filter(|&u| hateful[u as usize]).collect();

        // Fraction of a hateful user's follows aimed at the hate core,
        // and the acceptance probability of an ordinary user following a
        // hateful account.
        const HATE_FOLLOW_FRAC: f64 = 0.75;
        const ORGANIC_FOLLOWS_HATE: f64 = 0.04;

        // edges[v] = set of followees of v (v follows u). Built node by
        // node; preferential attachment by follower-count + 1.
        let mut follower_count = vec![1u32; n]; // +1 smoothing
        let mut followees: Vec<Vec<u32>> = vec![Vec::new(); n];

        for v in 0..n {
            let cv = community[v] as usize;
            let want = m.min(n - 1);
            let mut chosen = std::collections::HashSet::new();
            let mut attempts = 0;
            while chosen.len() < want && attempts < want * 30 {
                attempts += 1;
                // Hateful users predominantly follow the hate core.
                if hateful[v] && hate_pool.len() > 1 && rng.gen_bool(HATE_FOLLOW_FRAC) {
                    let u = hate_pool[rng.gen_range(0..hate_pool.len())] as usize;
                    if u != v && chosen.insert(u) {
                        follower_count[u] += 1;
                        followees[v].push(u as u32);
                    }
                    continue;
                }
                let in_comm = rng.gen_bool(affinity) && members[cv].len() > 1;
                let candidate = if in_comm {
                    // Preferential by rejection sampling inside community.
                    let pool = &members[cv];
                    let mut u = pool[rng.gen_range(0..pool.len())] as usize;
                    for _ in 0..4 {
                        let alt = pool[rng.gen_range(0..pool.len())] as usize;
                        if follower_count[alt] > follower_count[u] && rng.gen_bool(0.7) {
                            u = alt;
                        }
                    }
                    u
                } else {
                    // Global preferential via a tournament of 4.
                    let mut u = rng.gen_range(0..n);
                    for _ in 0..4 {
                        let alt = rng.gen_range(0..n);
                        if follower_count[alt] > follower_count[u] && rng.gen_bool(0.7) {
                            u = alt;
                        }
                    }
                    u
                };
                // Ordinary users mostly decline to follow hateful
                // accounts (marginal in the organic graph).
                if !hateful[v] && hateful[candidate] && !rng.gen_bool(ORGANIC_FOLLOWS_HATE) {
                    continue;
                }
                if candidate != v && chosen.insert(candidate) {
                    follower_count[candidate] += 1;
                    followees[v].push(candidate as u32);
                }
            }
        }

        Self::from_followees(followees, community)
    }

    /// Build from an explicit followee adjacency (v -> list of users v
    /// follows) and community labels.
    pub fn from_followees(followees: Vec<Vec<u32>>, community: Vec<u16>) -> Self {
        let n = followees.len();
        assert_eq!(community.len(), n);
        // Reverse to follower lists.
        let mut follower_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, fs) in followees.iter().enumerate() {
            for &u in fs {
                follower_lists[u as usize].push(v as u32);
            }
        }
        let build_csr = |lists: &[Vec<u32>]| -> (Vec<usize>, Vec<u32>) {
            let mut off = Vec::with_capacity(lists.len() + 1);
            off.push(0);
            let total: usize = lists.iter().map(|l| l.len()).sum();
            let mut adj = Vec::with_capacity(total);
            for l in lists {
                adj.extend_from_slice(l);
                off.push(adj.len());
            }
            (off, adj)
        };
        let (followers_off, followers_adj) = build_csr(&follower_lists);
        let (followees_off, followees_adj) = build_csr(&followees);
        Self {
            n,
            followers_off,
            followers_adj,
            followees_off,
            followees_adj,
            community,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n
    }

    /// Number of directed follow edges.
    pub fn n_edges(&self) -> usize {
        self.followers_adj.len()
    }

    /// Users who follow `u` (receive `u`'s tweets).
    pub fn followers(&self, u: usize) -> &[u32] {
        &self.followers_adj[self.followers_off[u]..self.followers_off[u + 1]]
    }

    /// Users whom `v` follows.
    pub fn followees(&self, v: usize) -> &[u32] {
        &self.followees_adj[self.followees_off[v]..self.followees_off[v + 1]]
    }

    /// Follower count of `u`.
    pub fn follower_count(&self, u: usize) -> usize {
        self.followers_off[u + 1] - self.followers_off[u]
    }

    /// Community label of `u`.
    pub fn community(&self, u: usize) -> u16 {
        self.community[u]
    }

    /// BFS shortest-path length (in follow hops, direction of information
    /// flow `from -> ...`) capped at `cap`; `None` if unreachable within
    /// the cap. This instantiates the peer-signal feature "shortest path
    /// length from u₀ to u_i in G" (Section V-A).
    pub fn shortest_path_len(&self, from: usize, to: usize, cap: usize) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut visited = vec![false; self.n];
        visited[from] = true;
        let mut frontier = vec![from as u32];
        for d in 1..=cap {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.followers(u as usize) {
                    if v as usize == to {
                        return Some(d);
                    }
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                return None;
            }
            frontier = next;
        }
        None
    }

    /// Degree (follower-count) histogram summary: (max, mean).
    pub fn follower_stats(&self) -> (usize, f64) {
        let max = (0..self.n)
            .map(|u| self.follower_count(u))
            .max()
            .unwrap_or(0);
        let mean = self.n_edges() as f64 / self.n as f64;
        (max, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> FollowerGraph {
        FollowerGraph::generate(300, 8, 4, 0.8, 7)
    }

    #[test]
    fn basic_shape() {
        let g = g();
        assert_eq!(g.n_users(), 300);
        assert!(g.n_edges() > 300 * 4, "should be densely followed");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = g();
        for v in 0..g.n_users() {
            let fs = g.followees(v);
            assert!(!fs.contains(&(v as u32)), "self-follow at {v}");
            let mut sorted = fs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), fs.len(), "duplicate follow at {v}");
        }
    }

    #[test]
    fn followers_and_followees_consistent() {
        let g = g();
        for u in 0..g.n_users() {
            for &v in g.followers(u) {
                assert!(
                    g.followees(v as usize).contains(&(u as u32)),
                    "inconsistent edge {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn heavy_tail_present() {
        let g = g();
        let (max, mean) = g.follower_stats();
        assert!(
            max as f64 > 4.0 * mean,
            "preferential attachment should create hubs: max {max}, mean {mean}"
        );
    }

    #[test]
    fn community_affinity_reflected_in_edges() {
        let g = FollowerGraph::generate(500, 10, 5, 0.9, 3);
        let mut within = 0usize;
        let mut total = 0usize;
        for v in 0..g.n_users() {
            for &u in g.followees(v) {
                total += 1;
                if g.community(v) == g.community(u as usize) {
                    within += 1;
                }
            }
        }
        let frac = within as f64 / total as f64;
        assert!(frac > 0.6, "within-community fraction {frac} too low");
    }

    #[test]
    fn shortest_path_basics() {
        // Chain: 0 -> 1 -> 2 (1 follows 0, 2 follows 1).
        let followees = vec![vec![], vec![0], vec![1]];
        let g = FollowerGraph::from_followees(followees, vec![0, 0, 0]);
        assert_eq!(g.shortest_path_len(0, 0, 5), Some(0));
        assert_eq!(g.shortest_path_len(0, 1, 5), Some(1));
        assert_eq!(g.shortest_path_len(0, 2, 5), Some(2));
        assert_eq!(g.shortest_path_len(2, 0, 5), None); // wrong direction
        assert_eq!(g.shortest_path_len(0, 2, 1), None); // cap too small
    }

    #[test]
    fn deterministic_under_seed() {
        let a = FollowerGraph::generate(100, 5, 3, 0.8, 11);
        let b = FollowerGraph::generate(100, 5, 3, 0.8, 11);
        assert_eq!(a.n_edges(), b.n_edges());
        for u in 0..100 {
            assert_eq!(a.followers(u), b.followers(u));
        }
    }
}
