//! # socialsim — synthetic Twitter substrate
//!
//! The paper's evaluation rests on a crawled corpus (161M tweets, 41M
//! users, a depth-3 follower network, 683k news articles and manual hate
//! annotation) that cannot be redistributed or re-crawled offline. This
//! crate is the documented substitution (see DESIGN.md §2): a *generative*
//! Twitter whose statistical signatures match what the paper measures —
//!
//! * a scale-free directed follower graph with community structure
//!   ([`graph`]),
//! * a hashtag roster mirroring Table II's 33 hashtags with per-tag tweet
//!   volume, average retweets and hate prevalence ([`topics`]),
//! * users whose hatefulness is **topic-dependent** (Fig. 3) ([`users`]),
//! * Zipfian topic-conditioned tweet text with hate-lexicon injection
//!   ([`textgen`], [`lexicon`]),
//! * an exogenous news stream that co-moves with on-platform topic
//!   activity ([`news`]),
//! * a Hawkes-like retweet cascade process in which hateful content
//!   spreads fast and early inside echo-chambers while non-hate spreads
//!   broader and slower (Fig. 1) ([`cascade`]),
//! * full corpus assembly with activity histories and Table II statistics
//!   ([`dataset`]).
//!
//! Everything is deterministic under [`config::SimConfig::seed`].

pub mod cascade;
pub mod config;
pub mod dataset;
pub mod graph;
pub mod lexicon;
pub mod news;
pub mod textgen;
pub mod topics;
pub mod users;

pub use cascade::{CascadeSimulator, Retweet};
pub use config::SimConfig;
pub use dataset::{Dataset, HashtagStats, NewsArticle, Tweet, TweetId, UserId};
pub use graph::FollowerGraph;
pub use lexicon::generate_lexicon;
pub use news::NewsGenerator;
pub use textgen::TextGenerator;
pub use topics::{Topic, TopicId, TopicRoster};
pub use users::UserProfile;
