//! Full corpus assembly: tweets with latent hate labels, retweet
//! cascades, user activity histories, the follower graph and the news
//! stream — everything Section VI-A's crawl provided, at configurable
//! scale, deterministic under the seed.

use crate::cascade::{CascadeSimulator, Retweet};
use crate::config::SimConfig;
use crate::graph::FollowerGraph;
use crate::lexicon::{generate_lexicon, lexicon_terms, LexiconEntry};
use crate::news::{news_before, Headline, NewsGenerator};
use crate::textgen::TextGenerator;
use crate::topics::{TopicId, TopicRoster};
use crate::users::{generate_users, UserProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense tweet identifier (index into [`Dataset::tweets`]).
pub type TweetId = usize;
/// Dense user identifier.
pub type UserId = usize;

/// A generated tweet.
#[derive(Debug, Clone)]
pub struct Tweet {
    /// Dense id.
    pub id: TweetId,
    /// Author.
    pub user: UserId,
    /// Hashtag/topic.
    pub topic: TopicId,
    /// Posting time in hours from the window start.
    pub time_hours: f64,
    /// Token sequence.
    pub tokens: Vec<String>,
    /// Latent gold hate label (what manual annotation would produce).
    pub hate: bool,
    /// Retweet cascade, sorted by time.
    pub retweets: Vec<Retweet>,
    /// Ambient (timeline-filler) tweets do not count toward the hashtag
    /// roster targets and never have cascades.
    pub is_ambient: bool,
}

/// A news article (headline only, as in the paper's usage).
#[derive(Debug, Clone)]
pub struct NewsArticle {
    /// Publication time in hours.
    pub time_hours: f64,
    /// Headline tokens.
    pub tokens: Vec<String>,
}

/// Per-hashtag statistics in the shape of Table II.
#[derive(Debug, Clone)]
pub struct HashtagStats {
    pub topic: TopicId,
    pub code: &'static str,
    pub tweets: usize,
    pub avg_retweets: f64,
    /// Unique users tweeting.
    pub users: usize,
    /// Unique users tweeting or retweeting.
    pub users_all: usize,
    /// Percentage (0..100) of hateful tweets.
    pub pct_hate: f64,
}

/// The assembled corpus.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: SimConfig,
    roster: TopicRoster,
    users: Vec<UserProfile>,
    graph: FollowerGraph,
    lexicon: Vec<LexiconEntry>,
    tweets: Vec<Tweet>,
    news: Vec<NewsArticle>,
    /// Per-user tweet ids sorted by time.
    timelines: Vec<Vec<TweetId>>,
    /// Internal: sorted headline times (mirror of `news`).
    headlines: Vec<Headline>,
}

impl Dataset {
    /// Generate the full corpus from a configuration.
    pub fn generate(config: SimConfig) -> Self {
        let roster = TopicRoster::paper_roster().with_bursts(config.seed ^ 0xB357);
        let users = generate_users(config.n_users, config.n_days, config.seed ^ 0xA5A5);
        // Users with substantial base hatefulness form the dense hate
        // core of the follower graph (echo-chambers, Section I / Fig. 1).
        let hateful_flags: Vec<bool> = users.iter().map(|u| u.base_hate > 0.25).collect();
        let graph = FollowerGraph::generate_with_hate_core(
            config.n_users,
            config.follows_per_user,
            config.n_communities,
            config.community_affinity,
            &hateful_flags,
            config.seed ^ 0x1111,
        );
        let lexicon = generate_lexicon(config.lexicon_size);
        let textgen = TextGenerator::new(
            config.global_vocab,
            config.topic_vocab,
            config.mean_tweet_len,
            &lexicon,
        );
        let headlines = NewsGenerator::new(config.news_per_day).generate(
            &roster,
            &textgen,
            config.n_days,
            config.seed ^ 0x2222,
        );
        let news: Vec<NewsArticle> = headlines
            .iter()
            .map(|h| NewsArticle {
                time_hours: h.time_hours,
                tokens: h.tokens.clone(),
            })
            .collect();

        let mean_avg_rt = roster.iter().map(|t| t.avg_retweets).sum::<f64>() / roster.len() as f64;
        let sim = CascadeSimulator::new(&graph, &users, &config, mean_avg_rt);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x3333);

        // News-heat index: per theme, the sorted publication times of its
        // headlines. A tweet's cascade hotness is driven by the count of
        // same-theme headlines in the preceding 24 h — the generated news
        // stream is the *causal* exogenous force behind virality
        // (Section II: external stimuli drive diffusion).
        let mut theme_news_times: Vec<Vec<f64>> = vec![Vec::new(); crate::users::ALL_THEMES.len()];
        for h in &headlines {
            let theme = roster.get(h.dominant_topic).theme;
            theme_news_times[crate::users::theme_index(theme)].push(h.time_hours);
        }
        let span = config.span_hours().max(24.0);
        let theme_mean_daily: Vec<f64> = theme_news_times
            .iter()
            .map(|v| (v.len() as f64 * 24.0 / span).max(0.5))
            .collect();
        let news_hotness = |topic: &crate::topics::Topic, t0: f64| -> f64 {
            let ti = crate::users::theme_index(topic.theme);
            let times = &theme_news_times[ti];
            let hi = times.partition_point(|&t| t < t0);
            let lo = times.partition_point(|&t| t < t0 - 24.0);
            let rel = (hi - lo) as f64 / theme_mean_daily[ti];
            (0.1 + 0.5 * rel).min(4.0)
        };

        // Both tweet populations have derivable sizes: the per-topic
        // Table II targets and the per-user ambient count below are
        // RNG-free, so the full length can be reserved exactly.
        let expected_roots: usize = roster
            .iter()
            .map(|t| roster.scaled_tweets(t.id, config.tweet_scale))
            .sum();
        let expected_ambient: usize = users
            .iter()
            .map(|p| ((p.activity_rate * config.n_days as f64 * 0.12) as usize).clamp(4, 45))
            .sum();
        let mut tweets: Vec<Tweet> = Vec::with_capacity(expected_roots + expected_ambient);

        // --- Root (hashtag) tweets per Table II targets -----------------
        for topic in roster.iter() {
            let n_tweets = roster.scaled_tweets(topic.id, config.tweet_scale);
            // Author pool weighted by activity × theme affinity ×
            // influence (trending corpora over-sample visible accounts).
            let weights: Vec<f64> = users
                .iter()
                .enumerate()
                .map(|(uid, u)| {
                    u.activity_rate
                        * (0.02 + u.topic_weight(topic))
                        * ((graph.follower_count(uid) + 1) as f64).powf(config.author_influence_exp)
                })
                .collect();
            let total_w: f64 = weights.iter().sum();
            // Hate calibration: E[P(hate|author)] should equal target.
            let target = topic.pct_hate / 100.0;
            let mean_hw: f64 = users
                .iter()
                .zip(&weights)
                .map(|(u, &w)| u.hate_weight(topic) * w)
                .sum::<f64>()
                / total_w;

            for _ in 0..n_tweets {
                // Weighted author draw.
                let mut pick: f64 = rng.gen_range(0.0..total_w);
                let mut author = 0usize;
                for (i, &w) in weights.iter().enumerate() {
                    if pick < w {
                        author = i;
                        break;
                    }
                    pick -= w;
                }
                // Time: Gaussian bump around the topic peak.
                let day = loop {
                    let z: f64 = {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    };
                    let d = topic.peak_day + z * topic.spread_days;
                    if d >= 0.0 && d < config.n_days as f64 {
                        break d;
                    }
                };
                // `day` is already fractional (time of day included).
                let t0 = (day * 24.0).min(config.span_hours() - 1e-6);

                // Hate assignment calibrated to the hashtag target. A
                // tweet's hatefulness mixes a persistent user component
                // (hateful users stay hateful, Fig. 3) with an
                // irreducible situational component (anyone can snap) —
                // the paper's gold labels themselves carry heavy noise
                // (Krippendorf alpha 0.58), so history must be
                // informative but far from an oracle.
                // Hate also spikes while the real-world event is hot
                // (the paper's premise — hate waves follow events), which
                // couples hate generation to the exogenous news signal
                // (Table V's Exogen ablation).
                let hw = users[author].hate_weight(topic);
                let hotness = news_hotness(topic, t0);
                let heat_factor = 0.45 + 0.55 * hotness / 1.3;
                let p_hate = if mean_hw <= 1e-9 || target <= 0.0 {
                    0.0
                } else {
                    (target * (0.7 * hw / mean_hw + 0.3) * heat_factor).clamp(0.0, 0.8)
                };
                let hate = rng.gen_bool(p_hate);

                let tokens = textgen.gen_tweet(topic, hate, &mut rng);
                let hotness = news_hotness(topic, t0);
                let retweets =
                    sim.simulate_with_hotness(author, topic, t0, hate, hotness, &mut rng);
                tweets.push(Tweet {
                    id: 0, // assigned after sorting
                    user: author,
                    topic: topic.id,
                    time_hours: t0,
                    tokens,
                    hate,
                    retweets,
                    is_ambient: false,
                });
            }
        }

        // --- Ambient timeline tweets ------------------------------------
        // Users need activity history ("30 most recent tweets", Section
        // IV-A); ambient tweets fill timelines without affecting hashtag
        // targets. Hatefulness follows the same user×topic propensity.
        for (uid, prof) in users.iter().enumerate() {
            let n_ambient =
                ((prof.activity_rate * config.n_days as f64 * 0.12) as usize).clamp(4, 45);
            for _ in 0..n_ambient {
                // Pick a topic by the user's theme affinity.
                let mut best_topic = 0usize;
                let mut best_w = -1.0;
                for _ in 0..3 {
                    let cand = rng.gen_range(0..roster.len());
                    let w = prof.topic_weight(roster.get(cand)) + rng.gen_range(0.0..0.05);
                    if w > best_w {
                        best_w = w;
                        best_topic = cand;
                    }
                }
                let topic = roster.get(best_topic);
                let t0 = rng.gen_range(0.0..config.span_hours());
                let p_hate = (prof.hate_weight(topic) * 0.8).clamp(0.0, 0.9);
                let hate = rng.gen_bool(p_hate);
                let tokens = textgen.gen_tweet(topic, hate, &mut rng);
                tweets.push(Tweet {
                    id: 0,
                    user: uid,
                    topic: topic.id,
                    time_hours: t0,
                    tokens,
                    hate,
                    retweets: Vec::new(),
                    is_ambient: true,
                });
            }
        }

        // Sort globally by time and assign ids; build timelines.
        tweets.sort_by(|a, b| a.time_hours.partial_cmp(&b.time_hours).unwrap());
        for (i, t) in tweets.iter_mut().enumerate() {
            t.id = i;
        }
        let mut timelines: Vec<Vec<TweetId>> = vec![Vec::new(); config.n_users];
        for t in &tweets {
            timelines[t.user].push(t.id);
        }

        Self {
            config,
            roster,
            users,
            graph,
            lexicon,
            tweets,
            news,
            timelines,
            headlines,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The topic roster.
    pub fn roster(&self) -> &TopicRoster {
        &self.roster
    }

    /// User profiles.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// The follower graph.
    pub fn graph(&self) -> &FollowerGraph {
        &self.graph
    }

    /// The hate lexicon used by the generator.
    pub fn lexicon(&self) -> &[LexiconEntry] {
        &self.lexicon
    }

    /// Lexicon term strings.
    pub fn lexicon_terms(&self) -> Vec<String> {
        lexicon_terms(&self.lexicon)
    }

    /// All tweets sorted by time.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// Root (non-ambient) tweets.
    pub fn root_tweets(&self) -> impl Iterator<Item = &Tweet> {
        self.tweets.iter().filter(|t| !t.is_ambient)
    }

    /// The news stream sorted by time.
    pub fn news(&self) -> &[NewsArticle] {
        &self.news
    }

    /// A user's tweet ids sorted by time.
    pub fn timeline(&self, user: UserId) -> &[TweetId] {
        &self.timelines[user]
    }

    /// The most recent `k` tweets of `user` strictly before `t_hours`
    /// (oldest first) — the activity history `H_{i,t}` of Section III.
    pub fn history_before(&self, user: UserId, t_hours: f64, k: usize) -> Vec<TweetId> {
        let tl = &self.timelines[user];
        let end = tl.partition_point(|&tid| self.tweets[tid].time_hours < t_hours);
        let start = end.saturating_sub(k);
        tl[start..end].to_vec()
    }

    /// Indices of the most recent `k` news articles strictly before
    /// `t_hours` (oldest first).
    pub fn news_before(&self, t_hours: f64, k: usize) -> Vec<usize> {
        news_before(&self.headlines, t_hours, k)
    }

    /// Trending topic ids (top `k`) on the day containing `t_hours`.
    pub fn trending_at(&self, t_hours: f64, k: usize) -> Vec<TopicId> {
        self.roster.trending(t_hours / 24.0, k)
    }

    /// Table II-shaped statistics for every hashtag.
    pub fn hashtag_stats(&self) -> Vec<HashtagStats> {
        let mut out = Vec::with_capacity(self.roster.len());
        for topic in self.roster.iter() {
            let roots: Vec<&Tweet> = self
                .tweets
                .iter()
                .filter(|t| !t.is_ambient && t.topic == topic.id)
                .collect();
            let n = roots.len();
            let total_rts: usize = roots.iter().map(|t| t.retweets.len()).sum();
            // Count-only sets; named distinctly from the `users` roster
            // field so the determinism pass (A2) can tell them apart.
            let mut tweeting: std::collections::HashSet<UserId> = std::collections::HashSet::new();
            let mut participating: std::collections::HashSet<UserId> =
                std::collections::HashSet::new();
            let mut hateful = 0usize;
            for t in &roots {
                tweeting.insert(t.user);
                participating.insert(t.user);
                for r in &t.retweets {
                    participating.insert(r.user as usize);
                }
                if t.hate {
                    hateful += 1;
                }
            }
            out.push(HashtagStats {
                topic: topic.id,
                code: topic.code,
                tweets: n,
                avg_retweets: if n == 0 {
                    0.0
                } else {
                    total_rts as f64 / n as f64
                },
                users: tweeting.len(),
                users_all: participating.len(),
                pct_hate: if n == 0 {
                    0.0
                } else {
                    100.0 * hateful as f64 / n as f64
                },
            });
        }
        out
    }

    /// Overall fraction of hateful tweets (roots only).
    pub fn overall_hate_rate(&self) -> f64 {
        let roots: Vec<&Tweet> = self.root_tweets().collect();
        if roots.is_empty() {
            return 0.0;
        }
        roots.iter().filter(|t| t.hate).count() as f64 / roots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(SimConfig::tiny())
    }

    #[test]
    fn generates_nonempty_corpus() {
        let d = tiny();
        assert!(d.tweets().len() > 100);
        assert!(d.news().len() > 100);
        assert!(d.root_tweets().count() > 50);
    }

    #[test]
    fn tweets_sorted_and_ids_dense() {
        let d = tiny();
        for (i, t) in d.tweets().iter().enumerate() {
            assert_eq!(t.id, i);
        }
        for w in d.tweets().windows(2) {
            assert!(w[0].time_hours <= w[1].time_hours);
        }
    }

    #[test]
    fn timelines_consistent() {
        let d = tiny();
        for u in 0..d.users().len() {
            let mut last = f64::NEG_INFINITY;
            for &tid in d.timeline(u) {
                assert_eq!(d.tweets()[tid].user, u);
                assert!(d.tweets()[tid].time_hours >= last);
                last = d.tweets()[tid].time_hours;
            }
        }
    }

    #[test]
    fn history_before_respects_time_and_k() {
        let d = tiny();
        // Find a user with >5 tweets.
        let u = (0..d.users().len())
            .find(|&u| d.timeline(u).len() > 5)
            .expect("some active user");
        let t_mid = d.tweets()[*d.timeline(u).last().unwrap()].time_hours;
        let hist = d.history_before(u, t_mid, 3);
        assert!(hist.len() <= 3);
        for &tid in &hist {
            assert!(d.tweets()[tid].time_hours < t_mid);
        }
    }

    #[test]
    fn hashtag_stats_shape_matches_targets() {
        let d = tiny();
        let stats = d.hashtag_stats();
        assert_eq!(stats.len(), 34);
        // Spot check: the scaled tweet targets are hit exactly.
        for s in &stats {
            let expect = d.roster().scaled_tweets(s.topic, d.config().tweet_scale);
            assert_eq!(s.tweets, expect, "tweet target for {}", s.code);
        }
    }

    #[test]
    fn hate_rate_tracks_table2_ordering() {
        // High-hate hashtags (WP 12.07%) should show more hate than
        // near-zero ones (DEM 0.06%) — at tiny scale just check ordering
        // in aggregate over groups.
        let d = Dataset::generate(SimConfig {
            tweet_scale: 0.1,
            n_users: 500,
            ..SimConfig::tiny()
        });
        let stats = d.hashtag_stats();
        let rate = |code: &str| stats.iter().find(|s| s.code == code).unwrap().pct_hate;
        let high = rate("WP") + rate("HUA") + rate("90DSB") + rate("ASMR");
        let low = rate("DEM") + rate("NHR") + rate("PMP") + rate("LE");
        assert!(
            high > low + 5.0,
            "hateful hashtags {high} vs clean hashtags {low}"
        );
    }

    #[test]
    fn overall_hate_rate_plausible() {
        let d = Dataset::generate(SimConfig {
            tweet_scale: 0.1,
            n_users: 500,
            ..SimConfig::tiny()
        });
        let r = d.overall_hate_rate();
        assert!(
            (0.005..0.15).contains(&r),
            "overall hate rate {r} out of plausible band"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.tweets().len(), b.tweets().len());
        for (x, y) in a.tweets().iter().zip(b.tweets()).take(100) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.hate, y.hate);
            assert_eq!(x.retweets.len(), y.retweets.len());
        }
    }

    #[test]
    fn ambient_tweets_have_no_cascades() {
        let d = tiny();
        for t in d.tweets().iter().filter(|t| t.is_ambient) {
            assert!(t.retweets.is_empty());
        }
    }

    #[test]
    fn news_before_works_via_dataset() {
        let d = tiny();
        let idx = d.news_before(24.0 * 35.0, 60);
        assert_eq!(idx.len(), 60);
    }

    #[test]
    fn trending_at_returns_k() {
        let d = tiny();
        assert_eq!(d.trending_at(24.0 * 10.0, 5).len(), 5);
    }
}
