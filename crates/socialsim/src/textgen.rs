//! Topic-conditioned synthetic tweet and headline text.
//!
//! Tweets are token sequences drawn from a mixture of
//!
//! * a global Zipfian background vocabulary (function words, platform
//!   chatter),
//! * theme-specific vocabulary shared by hashtags of one theme,
//! * hashtag-specific vocabulary,
//! * the hashtag token itself (every tweet carries its hashtag, matching
//!   how the paper's corpus was collected by tracking trending hashtags),
//! * and, for hateful tweets, hate-lexicon terms: mostly direct slurs plus
//!   colloquial terms that also appear (rarer) in non-hateful text —
//!   giving the lexicon feature its real discriminative-but-noisy
//!   character.
//!
//! News headlines share the theme vocabularies (that is exactly what makes
//! the exogenous signal informative) but use a distinct journalistic
//! background vocabulary.

use crate::lexicon::{LexiconEntry, LexiconEntryKind};
use crate::topics::{Topic, TopicRoster};
use crate::users::theme_index;
use rand::rngs::StdRng;
use rand::Rng;

/// A Zipfian sampler over `n` ranked items.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build with exponent `s` (s≈1 for natural language).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let u: f64 = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i,
        }
    }
}

/// The synthetic text generator.
#[derive(Debug, Clone)]
pub struct TextGenerator {
    global_zipf: Zipf,
    theme_zipf: Zipf,
    topic_zipf: Zipf,
    global_vocab: usize,
    topic_vocab: usize,
    mean_len: usize,
    slurs: Vec<String>,
    colloquials: Vec<String>,
    phrases: Vec<Vec<String>>,
}

impl TextGenerator {
    /// Build from the generation parameters and a lexicon.
    pub fn new(
        global_vocab: usize,
        topic_vocab: usize,
        mean_len: usize,
        lexicon: &[LexiconEntry],
    ) -> Self {
        let count = |kind: LexiconEntryKind| lexicon.iter().filter(|e| e.kind == kind).count();
        let mut slurs = Vec::with_capacity(count(LexiconEntryKind::Slur));
        let mut colloquials = Vec::with_capacity(count(LexiconEntryKind::Colloquial));
        let mut phrases = Vec::with_capacity(count(LexiconEntryKind::Phrase));
        for e in lexicon {
            match e.kind {
                LexiconEntryKind::Slur => slurs.push(e.term.clone()),
                LexiconEntryKind::Colloquial => colloquials.push(e.term.clone()),
                LexiconEntryKind::Phrase => {
                    phrases.push(e.term.split(' ').map(str::to_string).collect())
                }
            }
        }
        Self {
            global_zipf: Zipf::new(global_vocab, 1.05),
            theme_zipf: Zipf::new(topic_vocab * 3, 0.9),
            topic_zipf: Zipf::new(topic_vocab, 0.9),
            global_vocab,
            topic_vocab,
            mean_len,
            slurs,
            colloquials,
            phrases,
        }
    }

    /// Global vocabulary size.
    pub fn global_vocab(&self) -> usize {
        self.global_vocab
    }

    /// Per-topic vocabulary size.
    pub fn topic_vocab(&self) -> usize {
        self.topic_vocab
    }

    fn global_word(&self, rank: usize) -> String {
        format!("w{rank}")
    }

    fn theme_word(&self, theme_idx: usize, rank: usize) -> String {
        format!("th{theme_idx}x{rank}")
    }

    fn topic_word(&self, topic: &Topic, rank: usize) -> String {
        format!("{}x{rank}", topic.code.to_lowercase())
    }

    /// Generate one tweet's tokens for `topic`, hateful or not.
    pub fn gen_tweet(&self, topic: &Topic, hateful: bool, rng: &mut StdRng) -> Vec<String> {
        let len = sample_poisson(self.mean_len as f64, rng).max(4);
        let theme_idx = theme_index(topic.theme);
        let mut toks = Vec::with_capacity(len + 4);
        for _ in 0..len {
            let r: f64 = rng.gen_range(0.0..1.0);
            if r < 0.45 {
                toks.push(self.global_word(self.global_zipf.sample(rng)));
            } else if r < 0.72 {
                toks.push(self.theme_word(theme_idx, self.theme_zipf.sample(rng)));
            } else {
                toks.push(self.topic_word(topic, self.topic_zipf.sample(rng)));
            }
        }
        // Colloquial ambiguity: both classes use colloquial lexicon terms,
        // hateful text far more often.
        let colloq_rate = if hateful { 0.5 } else { 0.04 };
        if !self.colloquials.is_empty() && rng.gen_bool(colloq_rate) {
            let t = self.colloquials[rng.gen_range(0..self.colloquials.len())].clone();
            toks.insert(rng.gen_range(0..=toks.len()), t);
        }
        if hateful {
            // 1-4 direct slur tokens, occasionally a phrase.
            let n_slur = 1 + sample_poisson(1.2, rng).min(3);
            for _ in 0..n_slur {
                if !self.slurs.is_empty() {
                    let t = self.slurs[rng.gen_range(0..self.slurs.len())].clone();
                    toks.insert(rng.gen_range(0..=toks.len()), t);
                }
            }
            if !self.phrases.is_empty() && rng.gen_bool(0.15) {
                let ph = &self.phrases[rng.gen_range(0..self.phrases.len())];
                let pos = rng.gen_range(0..=toks.len());
                for (off, t) in ph.iter().enumerate() {
                    toks.insert(pos + off, t.clone());
                }
            }
        }
        // Hashtag token always present (collection-by-hashtag).
        toks.push(topic.hashtag.to_string());
        toks
    }

    /// Generate one news headline. `topic_mix` gives the active topics
    /// and their relative intensities at publication time; one topic is
    /// drawn per headline (articles are topically coherent) and returned
    /// alongside the tokens.
    pub fn gen_headline(
        &self,
        roster: &TopicRoster,
        topic_mix: &[(usize, f64)],
        rng: &mut StdRng,
    ) -> (Vec<String>, usize) {
        let len = sample_poisson(9.0, rng).max(5);
        let total: f64 = topic_mix.iter().map(|(_, w)| w).sum();
        // One coherent topic per article.
        let chosen = if total <= 0.0 {
            topic_mix.first().map(|&(t, _)| t).unwrap_or(0)
        } else {
            let mut pick: f64 = rng.gen_range(0.0..total);
            let mut c = topic_mix[0].0;
            for &(tid, w) in topic_mix {
                if pick < w {
                    c = tid;
                    break;
                }
                pick -= w;
            }
            c
        };
        let topic = roster.get(chosen);
        let mut toks = Vec::with_capacity(len);
        for _ in 0..len {
            let r: f64 = rng.gen_range(0.0..1.0);
            if r < 0.4 {
                // Journalistic background vocabulary (disjoint from tweets).
                toks.push(format!("nw{}", self.global_zipf.sample(rng)));
            } else if rng.gen_bool(0.6) {
                toks.push(self.theme_word(theme_index(topic.theme), self.theme_zipf.sample(rng)));
            } else {
                toks.push(self.topic_word(topic, self.topic_zipf.sample(rng)));
            }
        }
        (toks, chosen)
    }
}

/// Knuth Poisson sampler (fine for small means).
pub fn sample_poisson(mean: f64, rng: &mut StdRng) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Exponential sampler with the given mean.
pub fn sample_exponential(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::generate_lexicon;
    use rand::SeedableRng;

    fn setup() -> (TextGenerator, TopicRoster, StdRng) {
        let lex = generate_lexicon(209);
        let gen = TextGenerator::new(1000, 40, 14, &lex);
        (gen, TopicRoster::paper_roster(), StdRng::seed_from_u64(0))
    }

    #[test]
    fn tweet_contains_hashtag() {
        let (gen, roster, mut rng) = setup();
        let t = roster.get(0);
        let toks = gen.gen_tweet(t, false, &mut rng);
        assert!(toks.contains(&t.hashtag.to_string()));
    }

    #[test]
    fn hateful_tweets_carry_more_slurs() {
        let (gen, roster, mut rng) = setup();
        let t = roster.get(0);
        let count_slurs = |toks: &[String]| toks.iter().filter(|t| t.starts_with("slur")).count();
        let mut hate_slurs = 0;
        let mut clean_slurs = 0;
        for _ in 0..200 {
            hate_slurs += count_slurs(&gen.gen_tweet(t, true, &mut rng));
            clean_slurs += count_slurs(&gen.gen_tweet(t, false, &mut rng));
        }
        assert!(hate_slurs > 200, "hateful tweets should carry slurs");
        assert_eq!(clean_slurs, 0, "non-hate tweets never emit direct slurs");
    }

    #[test]
    fn colloquials_appear_in_both_classes() {
        let (gen, roster, mut rng) = setup();
        let t = roster.get(0);
        let has_colloq = |toks: &[String]| toks.iter().any(|t| t.starts_with("colloq"));
        let mut clean_with = 0;
        for _ in 0..800 {
            if has_colloq(&gen.gen_tweet(t, false, &mut rng)) {
                clean_with += 1;
            }
        }
        assert!(
            clean_with > 5,
            "colloquial terms must leak into clean text ({clean_with}/800)"
        );
    }

    #[test]
    fn same_theme_hashtags_share_vocabulary() {
        let (gen, roster, mut rng) = setup();
        let jv = roster.iter().find(|t| t.code == "JV").unwrap();
        let jua = roster.iter().find(|t| t.code == "JUA").unwrap();
        let covid = roster.iter().find(|t| t.code == "C_19").unwrap();
        let theme_words = |topic: &Topic, rng: &mut StdRng| -> std::collections::HashSet<String> {
            let mut set = std::collections::HashSet::new();
            for _ in 0..60 {
                for tok in gen.gen_tweet(topic, false, rng) {
                    if tok.starts_with("th") && tok.contains('x') {
                        set.insert(tok);
                    }
                }
            }
            set
        };
        let a = theme_words(jv, &mut rng);
        let b = theme_words(jua, &mut rng);
        let c = theme_words(covid, &mut rng);
        let overlap_ab = a.intersection(&b).count();
        let overlap_ac = a.intersection(&c).count();
        assert!(
            overlap_ab > overlap_ac,
            "same-theme overlap {overlap_ab} should beat cross-theme {overlap_ac}"
        );
    }

    #[test]
    fn headline_reflects_topic_mix() {
        let (gen, roster, mut rng) = setup();
        let jv = roster.iter().find(|t| t.code == "JV").unwrap();
        let mix = vec![(jv.id, 1.0)];
        let mut theme_hits = 0;
        for _ in 0..100 {
            let (toks, _) = gen.gen_headline(&roster, &mix, &mut rng);
            let ti = theme_index(jv.theme);
            if toks.iter().any(|t| t.starts_with(&format!("th{ti}x"))) {
                theme_hits += 1;
            }
        }
        assert!(theme_hits > 50, "headlines should carry theme words");
    }

    #[test]
    fn zipf_rank_ordering() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(14.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 14.0).abs() < 0.5, "poisson mean {mean}");
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(3.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "exp mean {mean}");
    }
}
