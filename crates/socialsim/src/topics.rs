//! The hashtag (topic) roster, mirroring Table II of the paper.
//!
//! Each hashtag carries the paper-reported target statistics (tweet
//! volume, average retweets, % hateful) that the generator calibrates to,
//! plus a *theme* grouping: hashtags like `#jamiaviolence`,
//! `#jamiaunderattack` and `#JamiaCCTV` share a discussion theme (and thus
//! vocabulary) while still differing in hate intensity — exactly the
//! observation of Fig. 2 ("even when different hashtags share a common
//! theme ... they may still incur a different degree of hate").

/// Dense topic identifier.
pub type TopicId = usize;

/// Discussion themes grouping related hashtags (shared vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Theme {
    /// Jamia university incident cluster.
    Jamia,
    /// Delhi riots / violence cluster.
    DelhiRiots,
    /// Delhi election cluster.
    Election,
    /// COVID-19 / lockdown cluster.
    Covid,
    /// CAA/NPR protest cluster.
    Protest,
    /// Media criticism cluster.
    Media,
    /// Judiciary / verdict cluster.
    Verdict,
    /// Miscellaneous politics.
    Politics,
}

/// One hashtag with its Table II target statistics.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Dense id (index into the roster).
    pub id: TopicId,
    /// Short code used in Table II (e.g. `JV`).
    pub code: &'static str,
    /// Full hashtag (e.g. `#jamiaviolence`).
    pub hashtag: &'static str,
    /// Theme cluster.
    pub theme: Theme,
    /// Paper tweet count (before scaling).
    pub paper_tweets: usize,
    /// Paper average retweets per tweet.
    pub avg_retweets: f64,
    /// Paper % of hateful tweets (0..100).
    pub pct_hate: f64,
    /// Day (0-based within the window) the hashtag peaks.
    pub peak_day: f64,
    /// Std-dev of the activity bell around the peak, in days.
    pub spread_days: f64,
    /// Unplanned event bursts `(day, strength, width_days)`: short spikes
    /// of real-world activity that drive both the news stream and cascade
    /// virality, but are *not* reflected in the (smoothed) trending list
    /// — the mechanism that makes the exogenous signal informative beyond
    /// the endogenous one (Section II / Myers et al.).
    pub bursts: Vec<(f64, f64, f64)>,
}

impl Topic {
    /// Smooth (planned) intensity at a fractional day.
    pub fn smooth_intensity(&self, day: f64) -> f64 {
        let z = (day - self.peak_day) / self.spread_days;
        (-0.5 * z * z).exp()
    }

    /// Full intensity: smooth component plus event bursts.
    pub fn intensity_at(&self, day: f64) -> f64 {
        let mut v = self.smooth_intensity(day);
        for &(b, strength, width) in &self.bursts {
            let z = (day - b) / width;
            v += strength * (-0.5 * z * z).exp();
        }
        v
    }
}

/// The full roster with scaling applied.
#[derive(Debug, Clone)]
pub struct TopicRoster {
    topics: Vec<Topic>,
}

impl TopicRoster {
    /// The 34 hashtags of Table II with target stats, activity peaks laid
    /// out over the 71-day window (2020-02-03 → 2020-04-14) according to
    /// the real-world event each hashtag tracks.
    pub fn paper_roster() -> Self {
        use Theme::*;
        let rows: Vec<(&'static str, &'static str, Theme, usize, f64, f64, f64, f64)> = vec![
            // (code, hashtag, theme, tweets, avg_rt, pct_hate, peak, spread)
            ("JV", "#jamiaviolence", Jamia, 950, 15.45, 3.78, 13.0, 4.0),
            (
                "MOTR",
                "#MigrantsOnTheRoad",
                Covid,
                872,
                6.69,
                8.20,
                57.0,
                5.0,
            ),
            (
                "TTSV",
                "#timetosackvadras",
                Politics,
                280,
                8.19,
                1.30,
                10.0,
                6.0,
            ),
            (
                "JUA",
                "#jamiaunderattack",
                Jamia,
                263,
                5.80,
                6.06,
                13.5,
                4.0,
            ),
            (
                "IBN",
                "#IndiaBoycottsNPR",
                Protest,
                570,
                7.87,
                0.80,
                18.0,
                6.0,
            ),
            ("ZNBK", "#ZeeNewsBanKaro", Media, 919, 9.58, 7.01, 20.0, 5.0),
            (
                "SCW",
                "#SaluteCoronaWarriors",
                Covid,
                104,
                5.65,
                0.0,
                49.0,
                4.0,
            ),
            (
                "DEM",
                "#Demonetisation",
                Politics,
                1696,
                3.46,
                0.06,
                30.0,
                9.0,
            ),
            ("CV", "#ChineseVirus", Covid, 8, 0.25, 0.50, 44.0, 3.0),
            (
                "IPIM",
                "#IslamoPhobicIndianMedia",
                Media,
                4307,
                15.46,
                8.42,
                56.0,
                6.0,
            ),
            (
                "DR2020",
                "#delhiriots2020",
                DelhiRiots,
                1453,
                12.23,
                6.80,
                23.0,
                4.0,
            ),
            ("S4S", "#Seva4Society", Covid, 1087, 13.24, 1.53, 60.0, 5.0),
            ("PMCF", "#PMCaresFunds", Covid, 1172, 7.61, 0.80, 56.0, 4.0),
            ("C_19", "#COVID_19", Covid, 971, 6.38, 1.96, 52.0, 10.0),
            (
                "HUA",
                "#Hindus_Under_Attack",
                DelhiRiots,
                382,
                7.10,
                10.10,
                24.0,
                3.5,
            ),
            ("WP", "#WarisPathan", Politics, 989, 9.23, 12.07, 27.0, 4.0),
            (
                "NHR",
                "#NorthDelhiRiots",
                DelhiRiots,
                3418,
                2.89,
                0.08,
                24.0,
                4.0,
            ),
            ("UM", "#UmarKhalid", Protest, 887, 3.82, 0.10, 29.0, 5.0),
            ("LE", "#lockdownextension", Covid, 107, 1.85, 0.0, 68.0, 2.5),
            ("JCCTV", "#JamiaCCTV", Jamia, 1045, 12.07, 5.66, 14.0, 3.5),
            (
                "TVI",
                "#TrumpVisitIndia",
                Politics,
                339,
                8.47,
                2.60,
                22.0,
                2.5,
            ),
            (
                "PNOP",
                "#PutNationOverPublicity",
                Politics,
                555,
                13.24,
                5.71,
                37.0,
                5.0,
            ),
            ("DE", "#DelhiExodus", DelhiRiots, 542, 9.66, 7.61, 25.0, 4.0),
            (
                "DER",
                "#DelhiElectionResults",
                Election,
                843,
                7.56,
                3.20,
                8.0,
                2.5,
            ),
            (
                "ASMR",
                "#amitshahmustresign",
                Election,
                959,
                5.01,
                9.94,
                26.0,
                4.5,
            ),
            ("PMP", "#PMPanuti", Election, 1346, 4.06, 0.02, 9.0, 4.0),
            (
                "R4GK",
                "#Restore4GinKashmir",
                Protest,
                949,
                3.94,
                2.84,
                33.0,
                7.0,
            ),
            (
                "DV",
                "#DelhiViolance",
                DelhiRiots,
                1121,
                9.004,
                7.37,
                24.0,
                4.0,
            ),
            ("SNPR", "#StopNPR", Protest, 82, 10.23, 0.0, 19.0, 5.0),
            (
                "1C4DH",
                "#1Crore4DelhiHindu",
                DelhiRiots,
                889,
                11.62,
                0.99,
                26.0,
                4.0,
            ),
            (
                "NV",
                "#NirbhayaVerdict",
                Verdict,
                649,
                7.61,
                4.67,
                46.0,
                3.0,
            ),
            (
                "NM",
                "#NizamuddinMarkaz",
                Covid,
                1124,
                8.24,
                7.85,
                58.0,
                3.5,
            ),
            (
                "90DSB",
                "#90daysofshaheenbagh",
                Protest,
                226,
                5.25,
                12.04,
                40.0,
                5.0,
            ),
            (
                "HML",
                "#HinduLivesMatter",
                DelhiRiots,
                392,
                4.82,
                0.12,
                25.0,
                4.0,
            ),
        ];
        let topics = rows
            .into_iter()
            .enumerate()
            .map(
                |(id, (code, hashtag, theme, tweets, avg_rt, pct, peak, spread))| Topic {
                    id,
                    code,
                    hashtag,
                    theme,
                    paper_tweets: tweets,
                    avg_retweets: avg_rt,
                    pct_hate: pct,
                    peak_day: peak,
                    spread_days: spread,
                    bursts: Vec::new(),
                },
            )
            .collect();
        Self { topics }
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// True if the roster is empty (never for the paper roster).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Topic by id.
    pub fn get(&self, id: TopicId) -> &Topic {
        &self.topics[id]
    }

    /// All topics.
    pub fn iter(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }

    /// Scaled tweet target for a topic (at least 4).
    pub fn scaled_tweets(&self, id: TopicId, scale: f64) -> usize {
        ((self.topics[id].paper_tweets as f64 * scale).round() as usize).max(4)
    }

    /// Add 1–3 random event bursts per topic (deterministic under
    /// `seed`). Burst days lie within ±2σ of the topic's peak.
    pub fn with_bursts(mut self, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for t in &mut self.topics {
            let n = rng.gen_range(2..=4);
            for _ in 0..n {
                let day = t.peak_day + rng.gen_range(-2.0..2.0) * t.spread_days;
                let strength = rng.gen_range(0.8..2.5);
                let width = rng.gen_range(0.6..1.8);
                t.bursts.push((day, strength, width));
            }
        }
        self
    }

    /// Full (bursty) intensity of a topic on a given fractional day —
    /// drives tweet volume, news volume and cascade virality.
    pub fn intensity(&self, id: TopicId, day: f64) -> f64 {
        self.topics[id].intensity_at(day)
    }

    /// The top-`k` trending topic ids on a given day, by *smoothed*
    /// `intensity × paper volume` (instantiates the "top 50 trending
    /// hashtags for the day" endogenous feature, Section IV-C). Trending
    /// lists aggregate over the day and lag short-lived bursts, so the
    /// smooth component is used here — which is precisely why the news
    /// stream carries exogenous information the endogenous vector lacks.
    pub fn trending(&self, day: f64, k: usize) -> Vec<TopicId> {
        let mut ids: Vec<TopicId> = (0..self.topics.len()).collect();
        ids.sort_by(|&a, &b| {
            let sa = self.topics[a].smooth_intensity(day) * self.topics[a].paper_tweets as f64;
            let sb = self.topics[b].smooth_intensity(day) * self.topics[b].paper_tweets as f64;
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        ids.truncate(k);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_34_hashtags() {
        let r = TopicRoster::paper_roster();
        assert_eq!(r.len(), 34);
    }

    #[test]
    fn table2_spot_checks() {
        let r = TopicRoster::paper_roster();
        let jv = r.iter().find(|t| t.code == "JV").unwrap();
        assert_eq!(jv.paper_tweets, 950);
        assert!((jv.avg_retweets - 15.45).abs() < 1e-9);
        assert!((jv.pct_hate - 3.78).abs() < 1e-9);
        let wp = r.iter().find(|t| t.code == "WP").unwrap();
        assert!((wp.pct_hate - 12.07).abs() < 1e-9);
        let scw = r.iter().find(|t| t.code == "SCW").unwrap();
        assert_eq!(scw.pct_hate, 0.0);
    }

    #[test]
    fn hashtags_unique() {
        let r = TopicRoster::paper_roster();
        let mut tags: Vec<&str> = r.iter().map(|t| t.hashtag).collect();
        tags.sort_unstable();
        let before = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), before);
    }

    #[test]
    fn intensity_peaks_at_peak_day() {
        let r = TopicRoster::paper_roster();
        for t in r.iter() {
            let at_peak = r.intensity(t.id, t.peak_day);
            assert!((at_peak - 1.0).abs() < 1e-12);
            assert!(r.intensity(t.id, t.peak_day + 10.0) < at_peak);
        }
    }

    #[test]
    fn trending_reflects_time() {
        let r = TopicRoster::paper_roster();
        // Early window: election results trend; late window: covid cluster.
        let early = r.trending(8.0, 5);
        let late = r.trending(58.0, 5);
        let der = r.iter().find(|t| t.code == "DER").unwrap().id;
        let nm = r.iter().find(|t| t.code == "NM").unwrap().id;
        assert!(early.contains(&der), "DER should trend on day 8");
        assert!(late.contains(&nm), "NM should trend on day 58");
        assert_ne!(early, late);
    }

    #[test]
    fn scaled_tweets_has_floor() {
        let r = TopicRoster::paper_roster();
        let cv = r.iter().find(|t| t.code == "CV").unwrap().id;
        assert_eq!(r.scaled_tweets(cv, 0.2), 4); // 8 * 0.2 = 1.6 -> floor 4
    }

    #[test]
    fn themes_group_related_hashtags() {
        let r = TopicRoster::paper_roster();
        let jamia: Vec<&str> = r
            .iter()
            .filter(|t| t.theme == Theme::Jamia)
            .map(|t| t.code)
            .collect();
        assert_eq!(jamia, vec!["JV", "JUA", "JCCTV"]);
    }
}
