//! Generation parameters for the synthetic Twitter corpus.

/// Configuration of the synthetic corpus generator.
///
/// The defaults produce a corpus whose *shape* matches the paper's crawl
/// (Table II) at roughly 1/5 scale so that the full experiment suite runs
/// on a laptop: ~2,500 core users, ~6,000 root tweets across 33 hashtags,
/// skewed retweet counts (average ≈ 8, max ≈ 200), ~4% hateful tweets
/// overall with strong per-hashtag variation (0%–12%), and a news stream
/// of ~12,000 headlines over the 71-day window 2020-02-03 → 2020-04-14.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master RNG seed; every derived generator seeds from this.
    pub seed: u64,
    /// Number of users in the core (tweeting) population.
    pub n_users: usize,
    /// Number of communities in the follower graph.
    pub n_communities: usize,
    /// Out-links (followees) created per user at attachment time.
    pub follows_per_user: usize,
    /// Probability that a follow edge stays within the user's community.
    pub community_affinity: f64,
    /// Scale factor on Table II per-hashtag tweet counts (1.0 = paper
    /// scale; default 0.2).
    pub tweet_scale: f64,
    /// Days in the observation window (paper: 2020-02-03..2020-04-14).
    pub n_days: usize,
    /// Average news headlines per day.
    pub news_per_day: usize,
    /// Vocabulary size of the background (global) word distribution.
    pub global_vocab: usize,
    /// Topic-specific words per hashtag.
    pub topic_vocab: usize,
    /// Number of hate-lexicon entries (paper's lexicon: 209).
    pub lexicon_size: usize,
    /// Mean tweet length in tokens.
    pub mean_tweet_len: usize,
    /// Base probability that an exposed follower retweets.
    pub base_retweet_prob: f64,
    /// Exponent biasing tweet authorship towards high-follower accounts
    /// (trending-hashtag corpora over-sample visible users).
    pub author_influence_exp: f64,
    /// Conversion boost for hateful content reaching a committed hater
    /// (scaled by the exposed user's own hatefulness) — the echo-chamber
    /// effect.
    pub hate_echo_boost: f64,
    /// Baseline conversion multiplier for hateful content reaching an
    /// ordinary user (hate converts poorly outside the chamber).
    pub hate_cross_damp: f64,
    /// Overall virality multiplier for hateful roots, modelling the
    /// organized promotion the paper attributes to hate campaigns
    /// ("organized spreaders of hate", "paid promotion", Section I).
    pub hate_virality: f64,
    /// Mean retweet delay in hours for non-hate content.
    pub mean_delay_hours: f64,
    /// Delay contraction for hateful content (organized early spread).
    pub hate_delay_factor: f64,
    /// Maximum cascade depth explored by the simulator.
    pub max_cascade_depth: usize,
    /// Cap on retweets per cascade (paper max: 196).
    pub max_retweets: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 20210203,
            n_users: 2500,
            n_communities: 12,
            follows_per_user: 12,
            community_affinity: 0.82,
            tweet_scale: 0.2,
            n_days: 71,
            news_per_day: 170,
            global_vocab: 4000,
            topic_vocab: 60,
            lexicon_size: 209,
            mean_tweet_len: 14,
            base_retweet_prob: 0.085,
            author_influence_exp: 0.7,
            hate_echo_boost: 6.0,
            hate_cross_damp: 0.15,
            hate_virality: 1.1,
            mean_delay_hours: 14.0,
            hate_delay_factor: 0.18,
            max_cascade_depth: 6,
            max_retweets: 200,
        }
    }
}

impl SimConfig {
    /// A small configuration for unit/integration tests (fast to build).
    pub fn tiny() -> Self {
        Self {
            n_users: 220,
            n_communities: 4,
            follows_per_user: 8,
            tweet_scale: 0.03,
            news_per_day: 25,
            global_vocab: 600,
            topic_vocab: 25,
            ..Default::default()
        }
    }

    /// Total hours in the observation window.
    pub fn span_hours(&self) -> f64 {
        self.n_days as f64 * 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_window() {
        let c = SimConfig::default();
        assert_eq!(c.n_days, 71); // 2020-02-03 .. 2020-04-14
        assert_eq!(c.lexicon_size, 209);
        assert_eq!(c.span_hours(), 71.0 * 24.0);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = SimConfig::tiny();
        let d = SimConfig::default();
        assert!(t.n_users < d.n_users);
        assert!(t.tweet_scale < d.tweet_scale);
    }
}
