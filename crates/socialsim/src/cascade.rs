//! Retweet cascade simulation with echo-chamber dynamics.
//!
//! The generator's ground truth implements the diffusion differences the
//! paper measures in Fig. 1:
//!
//! * **Hateful roots** spread *fast and early* (organized spreaders:
//!   retweet delays contracted by `hate_delay_factor`), at *higher volume
//!   inside the root's community* (`hate_echo_boost`) and poorly outside
//!   it (`hate_cross_damp`) — echo-chambers with fewer fresh susceptible
//!   users over time.
//! * **Non-hate roots** spread slower but wider, sustaining growth longer.
//!
//! A per-tweet lognormal virality factor produces the heavy-tailed cascade
//! sizes of the real corpus (average ≈ 13 retweets, max 196).

use crate::config::SimConfig;
use crate::graph::FollowerGraph;
use crate::textgen::sample_exponential;
use crate::topics::Topic;
use crate::users::UserProfile;
use rand::rngs::StdRng;
use rand::Rng;

/// One retweet event in a cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retweet {
    /// The retweeting user.
    pub user: u32,
    /// Absolute time in hours.
    pub time_hours: f64,
    /// Hop distance from the root along the diffusion tree.
    pub depth: u8,
    /// The user this retweet was caught from.
    pub parent: u32,
}

/// The cascade simulator.
#[derive(Debug, Clone)]
pub struct CascadeSimulator<'a> {
    graph: &'a FollowerGraph,
    users: &'a [UserProfile],
    config: &'a SimConfig,
    /// Mean of `avg_retweets` across the roster, for per-topic virality
    /// calibration.
    mean_avg_rt: f64,
}

impl<'a> CascadeSimulator<'a> {
    /// Create a simulator.
    pub fn new(
        graph: &'a FollowerGraph,
        users: &'a [UserProfile],
        config: &'a SimConfig,
        mean_avg_rt: f64,
    ) -> Self {
        Self {
            graph,
            users,
            config,
            mean_avg_rt: mean_avg_rt.max(0.1),
        }
    }

    /// Simulate the retweet cascade of one root tweet with hotness
    /// derived from the topic's intrinsic intensity curve. Returns
    /// retweets sorted by time.
    pub fn simulate(
        &self,
        root_user: usize,
        topic: &Topic,
        t0: f64,
        hateful: bool,
        rng: &mut StdRng,
    ) -> Vec<Retweet> {
        let hotness = 0.15 + 1.25 * topic.intensity_at(t0 / 24.0);
        self.simulate_with_hotness(root_user, topic, t0, hateful, hotness, rng)
    }

    /// Simulate with an explicit event-hotness multiplier. The dataset
    /// assembler derives hotness from the *generated news stream* (count
    /// of same-theme headlines in the preceding 24 h), which makes the
    /// exogenous signal causally informative (Section II: "external
    /// stimuli drive one-third of the information diffusion on Twitter").
    pub fn simulate_with_hotness(
        &self,
        root_user: usize,
        topic: &Topic,
        t0: f64,
        hateful: bool,
        hotness: f64,
        rng: &mut StdRng,
    ) -> Vec<Retweet> {
        let cfg = self.config;
        // Per-topic calibration: topics with higher paper avg-RT are more
        // viral; per-tweet lognormal skew creates the heavy tail.
        let topic_factor = topic.avg_retweets / self.mean_avg_rt;
        let z: f64 = {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let tweet_virality = (0.55 * z - 0.15).exp(); // lognormal, mean ≈ 1
        let root_comm = self.graph.community(root_user);

        let mut participants = vec![false; self.graph.n_users()];
        participants[root_user] = true;
        // The cascade is retained on its `Tweet` for the dataset's
        // lifetime, so seed a modest lower bound (typical cascades are
        // small) rather than reserving `max_retweets` up front.
        let mut out: Vec<Retweet> = Vec::with_capacity(cfg.max_retweets.min(16));
        // Frontier of spreaders: (user, time, depth).
        let mut frontier: Vec<(usize, f64, u8)> = vec![(root_user, t0, 0)];

        while let Some((spreader, ts, depth)) = frontier.pop() {
            if depth as usize >= cfg.max_cascade_depth || out.len() >= cfg.max_retweets {
                continue;
            }
            // Organized hate campaigns keep converting deep into the
            // chamber; organic spread attenuates quickly with depth.
            let depth_decay = if hateful {
                0.85f64.powi(depth as i32)
            } else {
                0.55f64.powi(depth as i32)
            };
            for &f in self.graph.followers(spreader) {
                if out.len() >= cfg.max_retweets {
                    break;
                }
                let fu = f as usize;
                if participants[fu] {
                    continue;
                }
                let prof = &self.users[fu];
                // Topic interest and platform activity of the exposed
                // user: passive accounts rarely retweet anything — the
                // inactive-node negatives the paper's task formulation
                // emphasizes.
                // Factors are normalized to population mean ≈ 1 so
                // `base_retweet_prob` directly sets the cascade scale.
                let activity = ((0.15 + prof.activity_rate / 1.2).min(2.5)) / 0.50;
                let mut p = cfg.base_retweet_prob
                    * topic_factor
                    * tweet_virality
                    * activity
                    * hotness
                    * depth_decay;
                if hateful {
                    // Echo-chamber dynamics: conversion is driven by the
                    // exposed user's own (topic-dependent) hatefulness —
                    // committed haters convert at a hugely elevated rate
                    // (hate_echo_boost), ordinary users mostly scroll
                    // past (hate_cross_damp), cross-community spread is
                    // mildly damped, and organized promotion raises
                    // everything via hate_virality.
                    let alignment = cfg.hate_cross_damp
                        + cfg.hate_echo_boost
                            * (0.35 * prof.base_hate + 1.2 * prof.hate_weight(topic));
                    p *= alignment * cfg.hate_virality;
                    if self.graph.community(fu) != root_comm {
                        p *= 0.6;
                    }
                } else {
                    // Organic spread follows topic interest.
                    p *= (0.08 + 4.5 * prof.topic_weight(topic)) / 0.64;
                }
                if rng.gen_bool(p.clamp(0.0, 0.95)) {
                    // Organized hate campaigns push content out near-
                    // simultaneously at every hop; organic re-shares slow
                    // down with depth.
                    let mean_delay = if hateful {
                        cfg.mean_delay_hours * cfg.hate_delay_factor * (1.0 + 0.15 * depth as f64)
                    } else {
                        cfg.mean_delay_hours * (1.0 + 0.6 * depth as f64)
                    };
                    let t = ts + sample_exponential(mean_delay, rng) + 0.01;
                    participants[fu] = true;
                    out.push(Retweet {
                        user: f,
                        time_hours: t,
                        depth: depth + 1,
                        parent: spreader as u32,
                    });
                    frontier.push((fu, t, depth + 1));
                }
            }
        }
        out.sort_by(|a, b| a.time_hours.partial_cmp(&b.time_hours).unwrap());
        out
    }
}

/// Cumulative retweet counts of a cascade at each requested hour offset
/// from `t0` (Fig. 1a's growth curves).
pub fn cascade_growth(retweets: &[Retweet], t0: f64, offsets_hours: &[f64]) -> Vec<usize> {
    offsets_hours
        .iter()
        .map(|&dt| retweets.iter().filter(|r| r.time_hours <= t0 + dt).count())
        .collect()
}

/// Cumulative count of *susceptible* users at each hour offset: users
/// exposed (followers of any participant active by then) who have not
/// themselves participated (Fig. 1b).
pub fn susceptible_growth(
    graph: &FollowerGraph,
    root_user: usize,
    retweets: &[Retweet],
    t0: f64,
    offsets_hours: &[f64],
) -> Vec<usize> {
    offsets_hours
        .iter()
        .map(|&dt| {
            let horizon = t0 + dt;
            // BTreeSets: `participant` is iterated to accumulate the
            // exposed set, so its order must be replayable (A2).
            let mut participant = std::collections::BTreeSet::new();
            participant.insert(root_user as u32);
            for r in retweets.iter().filter(|r| r.time_hours <= horizon) {
                participant.insert(r.user);
            }
            let mut exposed = std::collections::BTreeSet::new();
            for &p in &participant {
                for &f in graph.followers(p as usize) {
                    if !participant.contains(&f) {
                        exposed.insert(f);
                    }
                }
            }
            exposed.len()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topics::TopicRoster;
    use crate::users::generate_users;
    use rand::SeedableRng;

    fn setup() -> (FollowerGraph, Vec<UserProfile>, SimConfig, TopicRoster) {
        let cfg = SimConfig {
            n_users: 600,
            ..SimConfig::default()
        };
        let graph = FollowerGraph::generate(
            cfg.n_users,
            cfg.follows_per_user,
            cfg.n_communities,
            cfg.community_affinity,
            3,
        );
        let users = generate_users(cfg.n_users, cfg.n_days, 4);
        (graph, users, cfg, TopicRoster::paper_roster())
    }

    fn mean_avg_rt(roster: &TopicRoster) -> f64 {
        roster.iter().map(|t| t.avg_retweets).sum::<f64>() / roster.len() as f64
    }

    #[test]
    fn cascades_sorted_and_unique_users() {
        let (graph, users, cfg, roster) = setup();
        let sim = CascadeSimulator::new(&graph, &users, &cfg, mean_avg_rt(&roster));
        let mut rng = StdRng::seed_from_u64(0);
        let topic = roster.get(0);
        for root in 0..40 {
            let rts = sim.simulate(root, topic, 100.0, false, &mut rng);
            let mut seen = std::collections::HashSet::new();
            for w in rts.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours);
            }
            for r in &rts {
                assert!(seen.insert(r.user), "duplicate retweeter");
                assert!(r.user as usize != root, "root cannot retweet itself");
                assert!(r.time_hours > 100.0);
            }
        }
    }

    #[test]
    fn respects_caps() {
        let (graph, users, mut cfg, roster) = setup();
        cfg.max_retweets = 5;
        let sim = CascadeSimulator::new(&graph, &users, &cfg, mean_avg_rt(&roster));
        let mut rng = StdRng::seed_from_u64(1);
        for root in 0..50 {
            let rts = sim.simulate(root, roster.get(9), 10.0, false, &mut rng);
            assert!(rts.len() <= 5);
        }
    }

    #[test]
    fn hateful_cascades_are_echo_chambered() {
        // Retweeters of hateful roots should be overwhelmingly hateful
        // users themselves (the hate-core echo chamber), far beyond their
        // share among non-hate retweeters.
        let cfg = SimConfig {
            n_users: 600,
            ..SimConfig::default()
        };
        let users = generate_users(cfg.n_users, cfg.n_days, 4);
        let flags: Vec<bool> = users.iter().map(|u| u.base_hate > 0.25).collect();
        let graph = FollowerGraph::generate_with_hate_core(
            cfg.n_users,
            cfg.follows_per_user,
            cfg.n_communities,
            cfg.community_affinity,
            &flags,
            3,
        );
        let roster = TopicRoster::paper_roster();
        let sim = CascadeSimulator::new(&graph, &users, &cfg, mean_avg_rt(&roster));
        let mut rng = StdRng::seed_from_u64(2);
        let topic = roster.iter().find(|t| t.code == "IPIM").unwrap();
        let hater_frac = |hateful: bool, rng: &mut StdRng| {
            let mut haters = 0usize;
            let mut total = 0usize;
            for root in 0..600 {
                for r in sim.simulate(root, topic, 50.0, hateful, rng) {
                    total += 1;
                    if flags[r.user as usize] {
                        haters += 1;
                    }
                }
            }
            haters as f64 / total.max(1) as f64
        };
        let hate = hater_frac(true, &mut rng);
        let clean = hater_frac(false, &mut rng);
        assert!(
            hate > clean + 0.2,
            "hater share among retweeters: hateful roots {hate} vs non-hate {clean}"
        );
    }

    #[test]
    fn hateful_cascades_front_loaded() {
        // Median relative arrival time of hateful retweets is earlier.
        let (graph, users, cfg, roster) = setup();
        let sim = CascadeSimulator::new(&graph, &users, &cfg, mean_avg_rt(&roster));
        let mut rng = StdRng::seed_from_u64(3);
        let topic = roster.iter().find(|t| t.code == "WP").unwrap();
        let mean_delay = |hateful: bool, rng: &mut StdRng| {
            let mut delays = Vec::new();
            for root in 0..300 {
                for r in sim.simulate(root, topic, 0.0, hateful, rng) {
                    if r.depth == 1 {
                        delays.push(r.time_hours);
                    }
                }
            }
            delays.iter().sum::<f64>() / delays.len().max(1) as f64
        };
        let hate = mean_delay(true, &mut rng);
        let clean = mean_delay(false, &mut rng);
        assert!(
            hate < clean * 0.7,
            "hateful first-hop delay {hate} should be well below non-hate {clean}"
        );
    }

    #[test]
    fn growth_curves_monotone() {
        let (graph, users, cfg, roster) = setup();
        let sim = CascadeSimulator::new(&graph, &users, &cfg, mean_avg_rt(&roster));
        let mut rng = StdRng::seed_from_u64(4);
        let rts = sim.simulate(0, roster.get(0), 10.0, false, &mut rng);
        let offsets = [1.0, 6.0, 24.0, 72.0, 240.0];
        let g = cascade_growth(&rts, 10.0, &offsets);
        for w in g.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let s = susceptible_growth(&graph, 0, &rts, 10.0, &offsets);
        assert_eq!(s.len(), offsets.len());
    }

    #[test]
    fn susceptible_growth_is_pinned_on_a_hand_built_cascade() {
        // Determinism regression (A2 fix): the exposed-set sizes on this
        // hand-checkable graph must replay exactly, run after run.
        // Graph: 1,2 follow 0; 3,4 follow 1; 3,5 follow 2.
        let graph = FollowerGraph::from_followees(
            vec![vec![], vec![0], vec![0], vec![1, 2], vec![1], vec![2]],
            vec![0; 6],
        );
        let rt = |user: u32, t: f64, parent: u32| Retweet {
            user,
            time_hours: t,
            depth: 1,
            parent,
        };
        let rts = vec![rt(1, 1.0, 0), rt(2, 5.0, 0)];
        let s = susceptible_growth(&graph, 0, &rts, 0.0, &[0.0, 2.0, 10.0]);
        // t=0: {0} exposes {1,2}; t=2: {0,1} exposes {2,3,4};
        // t=10: {0,1,2} exposes {3,4,5}.
        assert_eq!(s, vec![2, 3, 3]);
    }

    #[test]
    fn virality_calibrated_to_topic() {
        // A high-avg-RT topic should produce bigger cascades than a
        // low-avg-RT one.
        let (graph, users, cfg, roster) = setup();
        let sim = CascadeSimulator::new(&graph, &users, &cfg, mean_avg_rt(&roster));
        let mut rng = StdRng::seed_from_u64(5);
        let hi = roster.iter().find(|t| t.code == "JV").unwrap(); // 15.45
        let lo = roster.iter().find(|t| t.code == "LE").unwrap(); // 1.85
        let mean_size = |topic: &Topic, rng: &mut StdRng| {
            let total: usize = (0..400)
                .map(|root| sim.simulate(root % 600, topic, 0.0, false, rng).len())
                .sum();
            total as f64 / 400.0
        };
        let big = mean_size(hi, &mut rng);
        let small = mean_size(lo, &mut rng);
        assert!(big > 2.0 * small, "JV mean {big} vs LE mean {small}");
    }
}
