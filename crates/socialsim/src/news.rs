//! Exogenous news stream.
//!
//! The paper collected 683k news articles over the observation window and
//! used the most recent headlines relative to each tweet as the exogenous
//! signal (Sections IV-D, V-A). The synthetic stream reproduces the one
//! property the models depend on: *news volume and content co-move with
//! on-platform topic activity* (the real-world event behind a hashtag
//! produces both the hashtag burst and the headlines). Each day emits a
//! Poisson number of headlines whose topic mixture follows the roster's
//! intensity curves on that day.

use crate::textgen::{sample_poisson, TextGenerator};
use crate::topics::TopicRoster;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated news headline.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Publication time in hours from the window start.
    pub time_hours: f64,
    /// Headline tokens.
    pub tokens: Vec<String>,
    /// The article's topic (ground truth, not exposed to models —
    /// used by tests and by the cascade simulator's news-heat coupling).
    pub dominant_topic: usize,
}

/// Generator for the news stream.
#[derive(Debug, Clone)]
pub struct NewsGenerator {
    per_day: usize,
}

impl NewsGenerator {
    /// Create with an average of `per_day` headlines per day.
    pub fn new(per_day: usize) -> Self {
        Self { per_day }
    }

    /// Generate the full stream over `n_days`, sorted by time.
    pub fn generate(
        &self,
        roster: &TopicRoster,
        textgen: &TextGenerator,
        n_days: usize,
        seed: u64,
    ) -> Vec<Headline> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.per_day * n_days);
        for day in 0..n_days {
            let day_f = day as f64 + 0.5;
            // Newsroom output tracks total event intensity: bursts produce
            // visible coverage spikes (the signal RETINA's attention
            // consumes).
            let total_intensity: f64 = (0..roster.len())
                .map(|tid| roster.intensity(tid, day_f))
                .sum();
            let volume_scale = (0.25 + 0.16 * total_intensity).min(3.0);
            let n = sample_poisson(self.per_day as f64 * volume_scale, &mut rng);
            let mut mix: Vec<(usize, f64)> = (0..roster.len())
                .map(|tid| {
                    (
                        tid,
                        roster.intensity(tid, day_f) * (roster.get(tid).paper_tweets as f64).sqrt(),
                    )
                })
                .collect();
            mix.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            mix.truncate(12);
            for _ in 0..n {
                let t = (day as f64 + rng.gen_range(0.0..1.0)) * 24.0;
                let (tokens, article_topic) = textgen.gen_headline(roster, &mix, &mut rng);
                out.push(Headline {
                    time_hours: t,
                    tokens,
                    dominant_topic: article_topic,
                });
            }
        }
        out.sort_by(|a, b| a.time_hours.partial_cmp(&b.time_hours).unwrap());
        out
    }
}

/// Indices of the latest `k` headlines strictly before `t_hours`.
/// `headlines` must be sorted by time (as produced by
/// [`NewsGenerator::generate`]). Returned oldest-first.
pub fn news_before(headlines: &[Headline], t_hours: f64, k: usize) -> Vec<usize> {
    let end = headlines.partition_point(|h| h.time_hours < t_hours);
    let start = end.saturating_sub(k);
    (start..end).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::generate_lexicon;

    fn stream() -> (Vec<Headline>, TopicRoster) {
        let roster = TopicRoster::paper_roster();
        let lex = generate_lexicon(100);
        let tg = TextGenerator::new(500, 30, 12, &lex);
        let news = NewsGenerator::new(40).generate(&roster, &tg, 71, 0);
        (news, roster)
    }

    #[test]
    fn volume_roughly_matches() {
        let (news, _) = stream();
        let expected = 40 * 71;
        assert!(
            (news.len() as f64 - expected as f64).abs() < expected as f64 * 0.3,
            "got {} headlines",
            news.len()
        );
    }

    #[test]
    fn sorted_by_time() {
        let (news, _) = stream();
        for w in news.windows(2) {
            assert!(w[0].time_hours <= w[1].time_hours);
        }
    }

    #[test]
    fn news_before_returns_latest_k() {
        let (news, _) = stream();
        let t = 24.0 * 30.0;
        let idx = news_before(&news, t, 60);
        assert_eq!(idx.len(), 60);
        for &i in &idx {
            assert!(news[i].time_hours < t);
        }
        // They are the *latest* ones: the next headline after the window
        // must be >= t.
        let last = *idx.last().unwrap();
        assert!(news.get(last + 1).map_or(true, |h| h.time_hours >= t));
    }

    #[test]
    fn news_before_start_is_empty_or_short() {
        let (news, _) = stream();
        let idx = news_before(&news, 0.5, 60);
        assert!(idx.len() < 60);
    }

    #[test]
    fn dominant_topic_tracks_events() {
        use crate::topics::Theme;
        let (news, roster) = stream();
        // Day 9 (election results peak): the dominant topic should be
        // from the Election cluster; day 68 (lockdown extension) from the
        // Covid cluster. (Day ~57 belongs to #IslamoPhobicIndianMedia,
        // the roster's highest-volume tag.)
        let theme_share = |day: f64, theme: Theme| {
            let hs: Vec<_> = news
                .iter()
                .filter(|h| (h.time_hours / 24.0).floor() == day)
                .collect();
            let hits = hs
                .iter()
                .filter(|h| roster.get(h.dominant_topic).theme == theme)
                .count();
            hits as f64 / hs.len().max(1) as f64
        };
        // Election coverage peaks around the election-results days and is
        // gone a month later; Covid coverage dominates the late window.
        assert!(theme_share(9.0, Theme::Election) > theme_share(40.0, Theme::Election) + 0.1);
        assert!(theme_share(68.0, Theme::Covid) > theme_share(9.0, Theme::Covid) + 0.1);
    }
}
