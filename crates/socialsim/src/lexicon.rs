//! Synthetic hate lexicon.
//!
//! The paper uses the 209-entry code-switched Hindi/English lexicon of
//! Kapoor et al. [17], which mixes directly derogatory slurs with
//! context-dependent colloquial terms (Section VI-B). That lexicon cannot
//! be redistributed here, so we synthesize one with the same *functional*
//! structure:
//!
//! * ~70% direct slur tokens (`slur_XX`) that the text generator emits
//!   almost exclusively in hateful tweets,
//! * ~20% ambiguous colloquial tokens (`colloq_XX`) emitted in both
//!   classes at different rates (these create the false-positive pressure
//!   real lexicons have),
//! * ~10% two-token phrases (`go back_XX` style) exercising the phrase
//!   matcher.

/// Kinds of lexicon entry, mirroring the real lexicon's mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LexiconEntryKind {
    /// Direct, unambiguous slur.
    Slur,
    /// Context-dependent colloquial term.
    Colloquial,
    /// Multi-token hateful phrase.
    Phrase,
}

/// A generated lexicon entry.
#[derive(Debug, Clone)]
pub struct LexiconEntry {
    /// The term (single token or space-separated phrase).
    pub term: String,
    /// Its kind.
    pub kind: LexiconEntryKind,
}

/// Generate a synthetic lexicon of `size` entries (the paper's is 209).
pub fn generate_lexicon(size: usize) -> Vec<LexiconEntry> {
    let n_slur = size * 7 / 10;
    let n_colloq = size * 2 / 10;
    let n_phrase = size - n_slur - n_colloq;
    let mut out = Vec::with_capacity(size);
    for i in 0..n_slur {
        out.push(LexiconEntry {
            term: format!("slur{i}"),
            kind: LexiconEntryKind::Slur,
        });
    }
    for i in 0..n_colloq {
        out.push(LexiconEntry {
            term: format!("colloq{i}"),
            kind: LexiconEntryKind::Colloquial,
        });
    }
    for i in 0..n_phrase {
        out.push(LexiconEntry {
            term: format!("hate{i} phrase{i}"),
            kind: LexiconEntryKind::Phrase,
        });
    }
    out
}

/// Just the term strings (for building a `text::HateLexicon`).
pub fn lexicon_terms(entries: &[LexiconEntry]) -> Vec<String> {
    entries.iter().map(|e| e.term.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let lex = generate_lexicon(209);
        assert_eq!(lex.len(), 209);
    }

    #[test]
    fn kind_mix_matches_ratios() {
        let lex = generate_lexicon(209);
        let slurs = lex
            .iter()
            .filter(|e| e.kind == LexiconEntryKind::Slur)
            .count();
        let colloq = lex
            .iter()
            .filter(|e| e.kind == LexiconEntryKind::Colloquial)
            .count();
        let phrases = lex
            .iter()
            .filter(|e| e.kind == LexiconEntryKind::Phrase)
            .count();
        assert_eq!(slurs, 146);
        assert_eq!(colloq, 41);
        assert_eq!(phrases, 22);
        assert_eq!(slurs + colloq + phrases, 209);
    }

    #[test]
    fn phrases_are_multi_token() {
        let lex = generate_lexicon(50);
        for e in &lex {
            match e.kind {
                LexiconEntryKind::Phrase => {
                    assert!(e.term.contains(' '), "phrase should have 2 tokens")
                }
                _ => assert!(!e.term.contains(' ')),
            }
        }
    }

    #[test]
    fn terms_unique() {
        let lex = generate_lexicon(209);
        let mut terms = lexicon_terms(&lex);
        terms.sort();
        let before = terms.len();
        terms.dedup();
        assert_eq!(terms.len(), before);
    }
}
