//! Retweeter prediction with RETINA: static vs dynamic vs the
//! no-exogenous ablation, plus a look inside the attention weights.
//!
//! ```text
//! cargo run --release --example retweet_prediction
//! ```

use diffusion::{split_samples, RetweetTask};
use ml::metrics::{map_at_k, rank_by_score, ClassificationReport};
use retina_core::detector::HateDetector;
use retina_core::features::{RetweetFeatures, TextModels};
use retina_core::retina::{default_intervals, pack_sample, Retina, RetinaConfig, RetinaMode};
use retina_core::trainer::{train_retina, TrainConfig};
use socialsim::{Dataset, SimConfig};

fn main() {
    println!("== corpus & features ==");
    let data = Dataset::generate(SimConfig {
        tweet_scale: 0.06,
        n_users: 400,
        ..SimConfig::tiny()
    });
    let models = TextModels::build(&data, 3);
    let detector = HateDetector::train(&data, &models, 0.6, 0);
    let silver = detector.silver_labels(&data, &models);
    let feats = RetweetFeatures::new(&data, &models, &silver);

    let samples = RetweetTask {
        min_news: 20,
        max_candidates: 40,
        ..Default::default()
    }
    .build(&data);
    let (train, test) = split_samples(samples, 0.8, 1);
    println!("{} train / {} test tweets", train.len(), test.len());

    let intervals = default_intervals();
    let news_k = 20;
    let packed_train: Vec<_> = train
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, news_k))
        .collect();
    let packed_test: Vec<_> = test
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, news_k))
        .collect();
    let d_user = packed_train[0].user_rows[0].len();

    let evaluate = |name: &str, mode: RetinaMode, exo: bool| {
        let cfg = RetinaConfig {
            mode,
            use_exogenous: exo,
            news_k,
            ..RetinaConfig::static_default()
        };
        let mut model = Retina::new(d_user, cfg);
        let tcfg = match mode {
            RetinaMode::Static => TrainConfig {
                epochs: 4,
                ..TrainConfig::static_default()
            },
            RetinaMode::Dynamic => TrainConfig {
                epochs: 4,
                ..TrainConfig::dynamic_default()
            },
        };
        train_retina(&mut model, &packed_train, &tcfg);
        let mut ys = Vec::new();
        let mut ss = Vec::new();
        let mut lists = Vec::new();
        for p in &packed_test {
            let probs = model.predict_proba(p);
            lists.push(rank_by_score(&probs, &p.labels));
            ss.extend(probs);
            ys.extend_from_slice(&p.labels);
        }
        let rep = ClassificationReport::from_scores(&ys, &ss);
        println!("  {:18} {} | MAP@20 {:.3}", name, rep, map_at_k(&lists, 20));
    };

    println!("\n== RETINA variants (Table VI core rows) ==");
    evaluate("RETINA-S", RetinaMode::Static, true);
    evaluate("RETINA-S (no exo)", RetinaMode::Static, false);
    evaluate("RETINA-D", RetinaMode::Dynamic, true);
    evaluate("RETINA-D (no exo)", RetinaMode::Dynamic, false);

    // A peek inside the exogenous attention: which news items does the
    // model attend to for one tweet?
    println!("\n== attention inspection ==");
    let mut model = Retina::new(d_user, RetinaConfig::static_default());
    train_retina(
        &mut model,
        &packed_train,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::static_default()
        },
    );
    let p = &packed_test[0];
    let _ = model.predict_proba(p);
    if let Some(w) = model.attention_weights() {
        let row = w.row(0);
        let (best, weight) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!(
            "tweet at t={:.1}h attends most to news item {}/{} (weight {:.3})",
            p.t0,
            best + 1,
            row.len(),
            weight
        );
    }
}
