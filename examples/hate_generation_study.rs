//! Hate-generation study: who will start a hate campaign on a hashtag?
//!
//! Walks the Section IV pipeline on a small corpus: feature extraction
//! across all four signal groups, the six-classifier comparison under
//! down-sampling, and a per-group ablation — a miniature of Tables IV
//! and V.
//!
//! ```text
//! cargo run --release --example hate_generation_study
//! ```

use retina_core::ablation::run_ablation;
use retina_core::detector::HateDetector;
use retina_core::features::{HategenFeatures, TextModels};
use retina_core::hategen::{HategenPipeline, ModelKind, Processing};
use socialsim::{Dataset, SimConfig};

fn main() {
    println!("== generating corpus ==");
    let data = Dataset::generate(SimConfig {
        tweet_scale: 0.06,
        n_users: 400,
        ..SimConfig::tiny()
    });
    let models = TextModels::build(&data, 3);

    // Silver labelling (Section VI-B): machine labels feed the features;
    // gold labels remain the evaluation target.
    let detector = HateDetector::train(&data, &models, 0.6, 0);
    println!("detector on held-out gold: {}", detector.report);
    let silver = detector.silver_labels(&data, &models);

    let feats = HategenFeatures::new(&data, &models, &silver);
    let samples = HategenPipeline::build_samples(&data, 20);
    let positives = samples.iter().filter(|s| s.hateful).count();
    println!(
        "task: {} (user, hashtag) samples, {} hateful ({:.1}%) — full feature dim {}",
        samples.len(),
        positives,
        100.0 * positives as f64 / samples.len() as f64,
        feats.dim()
    );

    println!("\n== six classifiers, downsampled training (Table IV column DS) ==");
    let pipe = HategenPipeline::new(&feats, &samples, None, 0);
    for model in ModelKind::ALL {
        let rep = pipe.run_cell(model, Processing::Downsample);
        println!("  {:10} {}", model.name(), rep);
    }

    println!("\n== signal ablation with Dec-Tree + DS (Table V) ==");
    for row in run_ablation(&feats, &samples, 0) {
        println!(
            "  {:16} macro-F1 {:.3} | AUC {:.3}",
            row.label, row.report.macro_f1, row.report.auc
        );
    }
    println!("\n(see `cargo run --release -p bench --bin exp_table4` for the full grid)");
}
