//! Quickstart: generate a synthetic corpus, train the silver-label hate
//! detector, and train RETINA-S on the retweet-prediction task — the
//! minimal end-to-end tour of the public API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use diffusion::{split_samples, RetweetTask};
use ml::metrics::ClassificationReport;
use retina_core::detector::HateDetector;
use retina_core::features::{RetweetFeatures, TextModels};
use retina_core::retina::{default_intervals, pack_sample, Retina, RetinaConfig};
use retina_core::trainer::{train_retina, TrainConfig};
use socialsim::{Dataset, SimConfig};

fn main() {
    // 1. Generate a small synthetic Twitter corpus (deterministic seed).
    println!("== 1. generating corpus ==");
    let data = Dataset::generate(SimConfig {
        tweet_scale: 0.04,
        n_users: 300,
        ..SimConfig::tiny()
    });
    println!(
        "   {} tweets ({} hashtag roots), {} users, {} news headlines",
        data.tweets().len(),
        data.root_tweets().count(),
        data.users().len(),
        data.news().len()
    );

    // 2. Train the text models (TF-IDF, Doc2Vec, lexicon).
    println!("== 2. training text models ==");
    let models = TextModels::build(&data, 3);
    println!(
        "   tweet TF-IDF dim {}, news TF-IDF dim {}, lexicon {} entries",
        models.tweet_tfidf.dim(),
        models.news_tfidf.dim(),
        models.lexicon.len()
    );

    // 3. Davidson-style hate detector -> silver labels (Section VI-B).
    println!("== 3. training hate detector ==");
    let detector = HateDetector::train(&data, &models, 0.6, 7);
    println!("   held-out gold performance: {}", detector.report);
    let silver = detector.silver_labels(&data, &models);

    // 4. Build the retweeter-prediction task (Section V).
    println!("== 4. building retweet task ==");
    let samples = RetweetTask {
        min_news: 20,
        max_candidates: 30,
        ..Default::default()
    }
    .build(&data);
    let (train, test) = split_samples(samples, 0.8, 1);
    println!("   {} train / {} test root tweets", train.len(), test.len());

    // 5. Pack features and train RETINA-S.
    println!("== 5. training RETINA-S ==");
    let feats = RetweetFeatures::new(&data, &models, &silver);
    let intervals = default_intervals();
    let packed_train: Vec<_> = train
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, 15))
        .collect();
    let packed_test: Vec<_> = test
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, 15))
        .collect();
    let d_user = packed_train[0].user_rows[0].len();
    let mut model = Retina::new(d_user, RetinaConfig::static_default());
    let losses = train_retina(
        &mut model,
        &packed_train,
        &TrainConfig {
            epochs: 4,
            ..TrainConfig::static_default()
        },
    );
    println!("   epoch losses: {losses:?}");

    // 6. Evaluate.
    println!("== 6. evaluating ==");
    let mut ys = Vec::new();
    let mut ss = Vec::new();
    for p in &packed_test {
        ss.extend(model.predict_proba(p));
        ys.extend_from_slice(&p.labels);
    }
    let report = ClassificationReport::from_scores(&ys, &ss);
    println!("   RETINA-S on held-out tweets: {report}");
    println!("done.");
}
