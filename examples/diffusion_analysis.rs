//! Diffusion analysis: echo-chambers and classical spread models.
//!
//! Reproduces the exploratory side of the paper (Fig. 1) and contrasts
//! the rudimentary diffusion models (SIR, General Threshold, Independent
//! Cascade) on the same ground-truth cascades.
//!
//! ```text
//! cargo run --release --example diffusion_analysis
//! ```

use diffusion::{IndependentCascade, RetweetTask, SirModel, ThresholdModel};
use ml::metrics::ClassificationReport;
use retina_core::experiments::fig1;
use socialsim::{Dataset, SimConfig};

fn main() {
    println!("== generating corpus ==");
    let data = Dataset::generate(SimConfig {
        tweet_scale: 0.1,
        n_users: 800,
        ..SimConfig::tiny()
    });

    println!("\n== Figure 1: hate vs non-hate diffusion dynamics ==");
    let pts = fig1::run(&data, &fig1::default_offsets());
    for p in &pts {
        println!("{p}");
    }
    let (more_rts, fewer_sus) = fig1::shape_holds(&pts);
    println!("hateful cascades out-retweet non-hate: {more_rts}");
    println!("hateful roots expose fewer susceptibles (echo-chamber): {fewer_sus}");

    println!("\n== rudimentary diffusion models as retweeter predictors ==");
    let samples = RetweetTask {
        min_news: 0,
        max_candidates: 60,
        ..Default::default()
    }
    .build(&data);
    let (train, test): (Vec<_>, Vec<_>) = {
        let n = samples.len() * 4 / 5;
        let mut s = samples;
        let test = s.split_off(n);
        (s, test)
    };
    println!("{} train / {} test tweets", train.len(), test.len());

    let eval = |name: &str, scores: Vec<Vec<f64>>| {
        let mut ys = Vec::new();
        let mut ss = Vec::new();
        for (s, t) in scores.iter().zip(&test) {
            ss.extend_from_slice(s);
            ys.extend_from_slice(&t.labels);
        }
        let rep = ClassificationReport::from_scores(&ys, &ss);
        println!("  {:22} {}", name, rep);
    };

    let sir = SirModel::fit(data.graph(), &train, 0);
    println!("fitted SIR beta = {:.4}", sir.beta);
    eval(
        "SIR",
        test.iter()
            .map(|s| sir.predict_proba(data.graph(), s))
            .collect(),
    );

    let thresh = ThresholdModel::new(1.5, 0);
    eval(
        "General Threshold",
        test.iter()
            .map(|s| thresh.predict_proba(data.graph(), s))
            .collect(),
    );

    let ic = IndependentCascade::new(0.05, 0);
    eval(
        "Independent Cascade",
        test.iter()
            .map(|s| ic.predict_proba(data.graph(), s))
            .collect(),
    );

    println!("\nAs in Table VI, graph-only contagion models cannot identify");
    println!("*which* followers will retweet — that needs the user-history,");
    println!("topic and exogenous signals RETINA consumes.");
}
