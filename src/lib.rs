//! Umbrella package for the RETINA reproduction workspace.
//!
//! This root package exists to host the runnable `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the workspace crates:
//!
//! * [`socialsim`] — synthetic Twitter substrate (follower graph, tweets,
//!   cascades, news stream).
//! * [`text`] — tokenization, TF-IDF, Doc2Vec, hate lexicon.
//! * [`ml`] — classical classifiers, feature processing, metrics.
//! * [`nn`] — tensors, layers (Dense/GRU/attention), optimizers.
//! * [`diffusion`] — SIR, threshold model and neural diffusion baselines.
//! * [`retina_core`] — the paper's contribution: hate-generation models and
//!   the RETINA retweeter-prediction architecture, plus every experiment.

pub use diffusion;
pub use ml;
pub use nn;
pub use retina_core;
pub use socialsim;
pub use text;
