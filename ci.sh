#!/usr/bin/env bash
# Local CI gate — run before pushing. Fails fast on the first broken step.
#
#   ./ci.sh            # fmt-check, lint, release build, tests
#   ./ci.sh --sanitize # additionally run the test-suite with the numeric
#                      # sanitizer enabled (--features sanitize)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

if cargo fmt --version >/dev/null 2>&1; then
    step "cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "rustfmt unavailable — skipping format check"
fi

step "xtask lint"
cargo run -p xtask -- lint

step "xtask analyze"
# Semantic passes (A1 shape-flow, A2 determinism, A3 cast-safety, A4
# panic-reachability, A5 hot-loop allocation, A6 discarded-Result, A7
# lock-order, A8 blocking-under-lock, A9 condvar-discipline, A10
# division/log-guard, A11 probability-domain, A12 reduction-inventory,
# A13 unsafe-contract, A14 capacity/growth, A15 footprint-inventory).
# Fails on any finding not grandfathered in xtask-baseline.json; the
# SARIF log is kept for CI systems and editors that ingest it.
# `cargo run -p xtask -- explain <rule>` documents any failing rule.
mkdir -p target
cargo run -p xtask -- analyze --format sarif --baseline > target/analyze.sarif

step "cargo build --release"
cargo build --release

step "cargo test"
cargo test -q

step "simd feature matrix"
# The f32 inference tier ships an opt-in AVX2 dispatch path behind the
# `simd` feature (DESIGN.md §13). Build it everywhere; run the nn parity
# suites under it only when the host CPU can actually take the AVX2
# branch, so bit-identity of simd-on vs simd-off is exercised for real.
cargo build -q --release --features simd
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
    cargo test -q -p nn --features simd
else
    echo "host CPU lacks AVX2 — simd build checked, runtime tests skipped"
fi

step "serving load-harness smoke"
# Tiny request counts — proves the snapshot + batched-server path works
# end to end (build snapshot, start workers, drain under load). Full
# numbers come from `cargo run -p xtask -- serving-report` (see
# BENCH_serving.json).
cargo run --release -p bench --bin retina_serve -- bench --smoke

step "criterion smoke (bench --test)"
# One sample per benchmark — proves the bench suite still compiles and
# every routine runs, without paying for real measurements. Full numbers
# come from `cargo run -p xtask -- bench-report` (see BENCH_kernels.json).
cargo bench -p bench --bench substrates -- --test

if [[ "${RETINA_BENCH_CHECK:-0}" == "1" ]]; then
    step "bench regression check"
    # Full measurement run compared against the committed
    # BENCH_kernels.json `current` section; fails on any kernel row more
    # than 15% slower. Opt-in (slow, and noisy on loaded machines).
    cargo run -p xtask -- bench-report --check

    step "serving regression check"
    # Full load run compared against the committed BENCH_serving.json
    # `current` section; fails on a >15% throughput drop or a >25% p99
    # latency rise on any scenario.
    cargo run -p xtask -- serving-report --check

    step "memory ceiling check"
    # Dataset generation re-measured against the committed
    # BENCH_graph.json `current` section; fails when any scenario's
    # peak RSS (VmHWM) grows more than 25%. Skips itself off Linux.
    cargo run -p xtask -- mem-report --check
fi

if [[ "${1:-}" == "--sanitize" ]]; then
    step "cargo test --features sanitize"
    cargo test -q --features sanitize
fi

if [[ "${RETINA_TSAN:-0}" == "1" ]]; then
    # ThreadSanitizer over the concurrency surface: the serving test
    # suite (batched server, stress/backpressure races) and the nn
    # crate's tests (the par worker pool). Complements the static A7–A9
    # passes with a dynamic race detector. Opt-in: needs a nightly
    # toolchain with rust-src — std must be rebuilt instrumented
    # (-Zbuild-std) or its sync primitives show up as false positives.
    if rustup run nightly rustc --version >/dev/null 2>&1 \
        && [[ -f "$(rustup run nightly rustc --print sysroot)/lib/rustlib/src/rust/library/Cargo.lock" ]]; then
        step "thread-sanitizer (serving + nn tests, nightly)"
        TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" \
        RUSTDOCFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -q -Zbuild-std \
                --target "$TSAN_TARGET" \
                --target-dir target/tsan \
                -p serving -p nn --tests
    else
        echo "RETINA_TSAN=1 but no nightly toolchain with rust-src — skipping thread-sanitizer run"
    fi
fi

printf '\nci.sh: all gates passed\n'
