//! Cross-crate integration: the full pipeline from corpus generation to
//! trained models, at smoke scale.

use diffusion::{split_samples, RetweetTask};
use ml::metrics::ClassificationReport;
use retina_core::detector::HateDetector;
use retina_core::features::{HategenFeatures, RetweetFeatures, TextModels};
use retina_core::hategen::{HategenPipeline, ModelKind, Processing};
use retina_core::retina::{default_intervals, pack_sample, Retina, RetinaConfig};
use retina_core::trainer::{train_retina, TrainConfig};
use socialsim::{Dataset, SimConfig};

fn corpus() -> Dataset {
    Dataset::generate(SimConfig {
        tweet_scale: 0.04,
        n_users: 300,
        ..SimConfig::tiny()
    })
}

#[test]
fn full_hategen_pipeline_runs() {
    let data = corpus();
    let models = TextModels::build(&data, 2);
    let det = HateDetector::train(&data, &models, 0.6, 0);
    assert!(det.report.auc > 0.7, "detector AUC {}", det.report.auc);
    let silver = det.silver_labels(&data, &models);
    let feats = HategenFeatures::new(&data, &models, &silver);
    let samples = HategenPipeline::build_samples(&data, 20);
    assert!(samples.len() > 100);
    let pipe = HategenPipeline::new(&feats, &samples, None, 0);
    let rep = pipe.run_cell(ModelKind::DecTree, Processing::Downsample);
    assert!(rep.macro_f1 > 0.0 && rep.macro_f1 <= 1.0);
    assert!(rep.auc.is_finite());
}

#[test]
fn full_retina_pipeline_runs() {
    let data = corpus();
    let models = TextModels::build(&data, 2);
    let det = HateDetector::train(&data, &models, 0.6, 0);
    let silver = det.silver_labels(&data, &models);
    let feats = RetweetFeatures::new(&data, &models, &silver);
    let samples = RetweetTask {
        min_news: 20,
        max_candidates: 30,
        ..Default::default()
    }
    .build(&data);
    assert!(!samples.is_empty());
    let (train, test) = split_samples(samples, 0.8, 1);
    let intervals = default_intervals();
    let pt: Vec<_> = train
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, 10))
        .collect();
    let pe: Vec<_> = test
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, 10))
        .collect();
    let d = pt[0].user_rows[0].len();
    assert_eq!(d, feats.retina_dim());

    let mut model = Retina::new(d, RetinaConfig::static_default());
    let losses = train_retina(
        &mut model,
        &pt,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::static_default()
        },
    );
    assert!(
        losses.last().unwrap() < &losses[0],
        "training loss must fall: {losses:?}"
    );
    let mut ys = Vec::new();
    let mut ss = Vec::new();
    for p in &pe {
        let probs = model.predict_proba(p);
        assert!(probs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        ss.extend(probs);
        ys.extend_from_slice(&p.labels);
    }
    let rep = ClassificationReport::from_scores(&ys, &ss);
    assert!(rep.auc.is_finite());
}

#[test]
fn pipeline_deterministic_under_seed() {
    let run = || {
        let data = corpus();
        let models = TextModels::build(&data, 2);
        let det = HateDetector::train(&data, &models, 0.6, 0);
        let silver = det.silver_labels(&data, &models);
        let feats = HategenFeatures::new(&data, &models, &silver);
        let t = data.root_tweets().nth(5).unwrap();
        feats.extract(t.user, t.topic, t.time_hours, None)
    };
    assert_eq!(run(), run());
}

#[test]
fn silver_and_gold_labels_differ_but_correlate() {
    let data = corpus();
    let models = TextModels::build(&data, 2);
    let det = HateDetector::train(&data, &models, 0.6, 0);
    let silver = det.silver_labels(&data, &models);
    let gold: Vec<bool> = data.tweets().iter().map(|t| t.hate).collect();
    let agree = silver.iter().zip(&gold).filter(|(s, g)| s == g).count() as f64 / gold.len() as f64;
    assert!(agree > 0.85, "agreement {agree}");
}
