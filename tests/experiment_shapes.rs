//! Experiment-scale shape assertions: the qualitative claims of the
//! paper's figures must hold on a corpus large enough for stable
//! statistics. These are the same checks the `exp_*` binaries print.
//!
//! Kept at a "medium" scale so the whole file runs in a couple of minutes
//! in release mode.

use retina_core::experiments::{fig1, fig2, fig3};
use socialsim::{Dataset, SimConfig};

fn medium_corpus() -> Dataset {
    Dataset::generate(SimConfig {
        tweet_scale: 0.1,
        n_users: 800,
        ..SimConfig::tiny()
    })
}

#[test]
fn fig1_hate_diffusion_shape() {
    let data = medium_corpus();
    let pts = fig1::run(&data, &fig1::default_offsets());
    let (more_rts, fewer_sus) = fig1::shape_holds(&pts);
    assert!(more_rts, "hateful cascades must out-retweet non-hate");
    assert!(
        fewer_sus,
        "hateful cascades must expose fewer susceptible users"
    );
    // Front-loading: hate reaches half its final mass earlier.
    let last = pts.last().unwrap();
    let half_hate = pts
        .iter()
        .find(|p| p.retweets_hate >= last.retweets_hate / 2.0)
        .unwrap()
        .offset_hours;
    let half_clean = pts
        .iter()
        .find(|p| p.retweets_nonhate >= last.retweets_nonhate / 2.0)
        .unwrap()
        .offset_hours;
    assert!(
        half_hate <= half_clean,
        "hate half-mass at {half_hate}h vs non-hate {half_clean}h"
    );
}

#[test]
fn fig2_hashtag_hate_ordering_tracks_paper() {
    let data = medium_corpus();
    let rows = fig2::run(&data);
    let rho = fig2::rank_correlation(&rows);
    assert!(rho > 0.55, "rank correlation {rho}");
}

#[test]
fn fig3_hate_is_topic_dependent() {
    let data = medium_corpus();
    let map = fig3::run(&data, 10, 12);
    let spread = fig3::mean_spread(&map);
    assert!(
        spread > 0.25,
        "hateful users must vary across hashtags (spread {spread})"
    );
}

#[test]
fn cascade_statistics_match_paper_scale() {
    let data = medium_corpus();
    let roots: Vec<_> = data.root_tweets().collect();
    let avg: f64 =
        roots.iter().map(|t| t.retweets.len()).sum::<usize>() as f64 / roots.len() as f64;
    // Paper: per-hashtag averages range 0.25..15.5, corpus max 196.
    assert!(
        (1.0..20.0).contains(&avg),
        "average retweets {avg} out of paper band"
    );
    let max = roots.iter().map(|t| t.retweets.len()).max().unwrap();
    assert!(max <= 200, "cascade cap violated: {max}");
    assert!(max > 20, "heavy tail missing: max {max}");
    // Enough eligible tweets for the retweet task (>1 retweet).
    let eligible = roots.iter().filter(|t| t.retweets.len() > 1).count();
    assert!(
        eligible as f64 / roots.len() as f64 > 0.2,
        "eligible fraction too small: {eligible}/{}",
        roots.len()
    );
}
