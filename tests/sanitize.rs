//! Numeric-sanitizer acceptance tests — compiled only under
//! `cargo test --features sanitize`. The feature propagates from this
//! root package through `retina-core` into `nn`, arming finiteness and
//! shape checks at every layer boundary.
#![cfg(feature = "sanitize")]

use nn::{Dense, Gru, Matrix, NumericError};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f`, expecting it to trip the sanitizer, and return the report.
fn trap(f: impl FnOnce() + std::panic::UnwindSafe) -> NumericError {
    let payload = catch_unwind(f).expect_err("sanitizer should have tripped");
    *payload
        .downcast::<NumericError>()
        .expect("panic payload is a structured NumericError")
}

#[test]
fn injected_nan_is_reported_with_the_layer_name() {
    let mut dense = Dense::new(3, 2, 42);
    dense.w.value.set(2, 1, f64::NAN);
    let x = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
    let err = trap(AssertUnwindSafe(|| {
        let _ = dense.forward(&x);
    }));
    assert_eq!(err.layer, "dense");
    assert_eq!(err.op, "forward");
    assert!(err.value.is_nan(), "report carries the offending value");
    let rendered = err.to_string();
    assert!(rendered.contains("dense::forward"), "{rendered}");
}

#[test]
fn injected_nan_is_caught_inside_the_gru_scan() {
    let mut gru = Gru::new(2, 3, 7);
    // tanh would saturate an infinity back to 1.0, so inject NaN, which
    // survives every gate nonlinearity and must be caught at the step
    // boundary.
    gru.wh.value.set(0, 0, f64::NAN);
    let xs = vec![Matrix::from_vec(1, 2, vec![1.0, 1.0])];
    let err = trap(AssertUnwindSafe(|| {
        let _ = gru.forward(&xs);
    }));
    assert_eq!(err.layer, "gru");
    assert_eq!(err.op, "step");
}

#[test]
fn shape_mismatch_is_a_structured_report_not_an_index_panic() {
    let mut dense = Dense::new(4, 2, 1);
    let x = Matrix::zeros(2, 6);
    let err = trap(AssertUnwindSafe(|| {
        let _ = dense.forward(&x);
    }));
    assert_eq!(err.layer, "dense");
    assert_eq!(err.index, 6, "observed input width");
    assert_eq!(err.value as usize, 4, "expected input width");
}

#[test]
fn finite_paths_are_untouched_by_the_sanitizer() {
    // The instrumented build must compute the exact same gradients as the
    // plain build (the constant is asserted in both configurations).
    assert_eq!(nn::gradcheck::gradient_fingerprint(), 0x2927_a47c_c47c_8579);
}
