//! Parallel feature packing must be byte-identical to the serial path.

use diffusion::RetweetTask;
use retina_core::detector::HateDetector;
use retina_core::features::{RetweetFeatures, TextModels};
use retina_core::retina::{default_intervals, pack_sample, pack_samples_parallel};
use socialsim::{Dataset, SimConfig};

#[test]
fn parallel_packing_matches_serial() {
    let data = Dataset::generate(SimConfig {
        tweet_scale: 0.04,
        n_users: 300,
        ..SimConfig::tiny()
    });
    let models = TextModels::build(&data, 2);
    let det = HateDetector::train(&data, &models, 0.6, 0);
    let silver = det.silver_labels(&data, &models);
    let feats = RetweetFeatures::new(&data, &models, &silver);
    let samples = RetweetTask {
        min_news: 10,
        max_candidates: 25,
        ..Default::default()
    }
    .build(&data);
    assert!(samples.len() >= 8, "need enough samples to exercise chunks");
    let intervals = default_intervals();

    let serial: Vec<_> = samples
        .iter()
        .map(|s| pack_sample(&feats, s, &intervals, 10))
        .collect();

    // The doc contract on `pack_samples_parallel` promises bit-identical
    // output for 1, 3, and 7 threads: sample `i` always lands in slot
    // `i`, whatever the chunking. 3 and 7 deliberately do not divide the
    // sample count evenly, so ragged tail chunks are exercised too.
    for n_threads in [1usize, 3, 7] {
        let parallel = pack_samples_parallel(&feats, &samples, &intervals, 10, n_threads);
        assert_eq!(serial.len(), parallel.len(), "{n_threads} threads");
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.user_rows, b.user_rows, "sample {i}, {n_threads} threads");
            assert_eq!(a.labels, b.labels, "sample {i}, {n_threads} threads");
            assert_eq!(
                a.interval_labels, b.interval_labels,
                "sample {i}, {n_threads} threads"
            );
            assert_eq!(a.tweet_d2v, b.tweet_d2v, "sample {i}, {n_threads} threads");
            assert_eq!(a.news_d2v, b.news_d2v, "sample {i}, {n_threads} threads");
        }
    }
}

#[test]
fn parallel_packing_single_thread_fallback() {
    let data = Dataset::generate(SimConfig {
        tweet_scale: 0.03,
        n_users: 250,
        ..SimConfig::tiny()
    });
    let models = TextModels::build(&data, 2);
    let det = HateDetector::train(&data, &models, 0.6, 0);
    let silver = det.silver_labels(&data, &models);
    let feats = RetweetFeatures::new(&data, &models, &silver);
    let samples = RetweetTask {
        min_news: 5,
        max_candidates: 15,
        ..Default::default()
    }
    .build(&data);
    let intervals = default_intervals();
    let packs = pack_samples_parallel(&feats, &samples, &intervals, 5, 1);
    assert_eq!(packs.len(), samples.len());
}
