//! Property-style tests over the core invariants of the workspace:
//! metrics, tensors, attention, sampling, graphs and text. Each test draws
//! many random cases from a seeded generator (the registry is offline, so
//! `proptest` is replaced by explicit seeded loops — same invariants,
//! deterministic cases).

use ml::metrics::{accuracy, average_precision_at_k, macro_f1, roc_auc};
use nn::{ExogenousAttention, Matrix, WeightedBce};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socialsim::FollowerGraph;
use text::HateLexicon;

const CASES: usize = 64;

fn rng_for(case: usize, salt: u64) -> StdRng {
    StdRng::seed_from_u64(0x9E37 ^ salt ^ (case as u64).wrapping_mul(0x517C_C1B7_2722_0A95))
}

fn random_scores(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

fn random_labels(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen_range(0..2u8)).collect()
}

/// AUC is invariant under strictly monotone score transforms.
#[test]
fn auc_monotone_invariant() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 1);
        let n = rng.gen_range(4..40);
        let s = random_scores(&mut rng, n, 0.0, 1.0);
        let y = random_labels(&mut rng, n);
        let a = roc_auc(&y, &s);
        let transformed: Vec<f64> = s.iter().map(|&x| (3.0 * x + 1.0).exp()).collect();
        let b = roc_auc(&y, &transformed);
        assert!((a - b).abs() < 1e-9, "case {case}: {a} vs {b}");
    }
}

/// AUC, accuracy and macro-F1 are always within [0, 1].
#[test]
fn metrics_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 2);
        let n = rng.gen_range(2..50);
        let scores = random_scores(&mut rng, n, -10.0, 10.0);
        let y = random_labels(&mut rng, n);
        let preds: Vec<u8> = scores.iter().map(|&s| u8::from(s >= 0.0)).collect();
        let f = macro_f1(&y, &preds);
        assert!((0.0..=1.0).contains(&f), "case {case}: macro_f1 {f}");
        let acc = accuracy(&y, &preds);
        assert!((0.0..=1.0).contains(&acc), "case {case}: accuracy {acc}");
        let a = roc_auc(&y, &scores);
        assert!((0.0..=1.0).contains(&a), "case {case}: auc {a}");
    }
}

/// AP@k never exceeds 1 and equals 1 when every top slot is relevant.
#[test]
fn average_precision_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 3);
        let n = rng.gen_range(1..60);
        let rel: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let k = rng.gen_range(1..80);
        let ap = average_precision_at_k(&rel, k);
        assert!((0.0..=1.0 + 1e-12).contains(&ap), "case {case}: ap {ap}");
        let all_true = vec![true; rel.len()];
        let perfect = average_precision_at_k(&all_true, k);
        assert!((perfect - 1.0).abs() < 1e-12, "case {case}: {perfect}");
    }
}

/// Row softmax always yields a probability simplex.
#[test]
fn softmax_simplex() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 4);
        let cols = 3;
        let rows = rng.gen_range(2..8);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-50.0..50.0));
        let s = m.softmax_rows();
        for r in 0..rows {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "case {case} row {r}: sum {sum}");
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }
}

/// Attention weights form a simplex for arbitrary inputs.
#[test]
fn attention_simplex() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 5);
        let seed = rng.gen_range(0..1000u64);
        let k = rng.gen_range(1..6);
        let batch = rng.gen_range(1..4);
        let mut att = ExogenousAttention::new(4, 4, 8, seed);
        let xt = Matrix::xavier_seeded(batch, 4, seed ^ 1).scaled(5.0);
        let xn: Vec<Matrix> = (0..k)
            .map(|i| Matrix::xavier_seeded(batch, 4, seed ^ (2 + i as u64)).scaled(5.0))
            .collect();
        let _ = att.forward(&xt, &xn);
        let w = att.attention_weights().expect("weights cached by forward");
        for b in 0..batch {
            let sum: f64 = w.row(b).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "case {case} batch {b}: {sum}");
        }
    }
}

/// Weighted BCE is non-negative and finite for any logits.
#[test]
fn bce_nonnegative() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 6);
        let n = rng.gen_range(1..30);
        let logits = random_scores(&mut rng, n, -100.0, 100.0);
        let w = rng.gen_range(1.0..20.0);
        let z = Matrix::from_vec(1, n, logits);
        let t = Matrix::from_fn(1, n, |_, c| (c % 2) as f64);
        let bce = WeightedBce { pos_weight: w };
        let loss = bce.loss(&z, &t);
        assert!(loss.is_finite(), "case {case}: loss {loss}");
        assert!(loss >= 0.0, "case {case}: loss {loss}");
    }
}

/// Generated graphs never contain self-loops or duplicate follows.
#[test]
fn graph_invariants() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 7);
        let n = rng.gen_range(10..120);
        let m = rng.gen_range(1..8);
        let comms = rng.gen_range(1..6);
        let seed = rng.gen_range(0..500u64);
        let g = FollowerGraph::generate(n, m, comms, 0.8, seed);
        assert_eq!(g.n_users(), n);
        for v in 0..n {
            let fs = g.followees(v);
            assert!(!fs.contains(&(v as u32)), "case {case}: self-loop at {v}");
            let mut sorted = fs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), fs.len(), "case {case}: duplicate follow");
        }
    }
}

/// Downsampling always keeps every minority sample and balances.
#[test]
fn downsample_balances() {
    let mut accepted = 0usize;
    let mut case = 0usize;
    while accepted < CASES {
        let mut rng = rng_for(case, 8);
        case += 1;
        let n = rng.gen_range(10..200);
        let labels = random_labels(&mut rng, n);
        let seed = rng.gen_range(0..100u64);
        if !labels.iter().any(|&l| l == 1) || !labels.iter().any(|&l| l == 0) {
            continue; // degenerate draw, mirrors prop_assume!
        }
        accepted += 1;
        let x: Vec<Vec<f64>> = (0..labels.len()).map(|i| vec![i as f64]).collect();
        let (_, ys) = ml::sampling::downsample_majority(&x, &labels, 1.0, seed);
        let pos = ys.iter().filter(|&&l| l == 1).count();
        let neg = ys.len() - pos;
        let min_class = labels
            .iter()
            .filter(|&&l| l == 1)
            .count()
            .min(labels.iter().filter(|&&l| l == 0).count());
        assert_eq!(pos.min(neg), min_class, "case {case}");
        assert!((pos as i64 - neg as i64).abs() <= 1, "case {case}");
    }
}

/// Lexicon counting never exceeds the token count and is case-insensitive.
#[test]
fn lexicon_counts_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 9);
        let n = rng.gen_range(1..40);
        let words: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.gen_range(1..=6);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect()
            })
            .collect();
        let lex = HateLexicon::new(&words[..words.len().min(5)]);
        let counts = lex.count_vector(&words);
        let total: u32 = counts.iter().sum();
        assert!(total as usize <= words.len(), "case {case}");
        let upper: Vec<String> = words.iter().map(|t| t.to_uppercase()).collect();
        assert_eq!(lex.count_vector(&upper), counts, "case {case}");
    }
}

/// Tokenizer output is always lowercase and non-empty tokens only.
#[test]
fn tokenizer_invariants() {
    // Printable-ASCII plus some unicode and control characters, random
    // lengths up to 200 — the same space ".{0,200}" explored before.
    let alphabet: Vec<char> = (' '..='~')
        .chain(['é', 'Ω', '中', '\t', '\n', '#', '@', '🙂'])
        .collect();
    for case in 0..CASES {
        let mut rng = rng_for(case, 10);
        let len = rng.gen_range(0..=200usize);
        let input: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        for tok in text::tokenize(&input) {
            assert!(!tok.is_empty(), "case {case}: empty token");
            assert_eq!(tok.to_lowercase(), tok, "case {case}: token not lowercase");
        }
    }
}
