//! Property-based tests (proptest) over the core invariants of the
//! workspace: metrics, tensors, attention, sampling, graphs and text.

use ml::metrics::{accuracy, average_precision_at_k, macro_f1, roc_auc};
use nn::{ExogenousAttention, Matrix, WeightedBce};
use proptest::prelude::*;
use socialsim::FollowerGraph;
use text::HateLexicon;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_monotone_invariant(
        scores in prop::collection::vec(0.0f64..1.0, 4..40),
        labels in prop::collection::vec(0u8..2, 4..40),
    ) {
        let n = scores.len().min(labels.len());
        let s = &scores[..n];
        let y = &labels[..n];
        let a = roc_auc(y, s);
        let transformed: Vec<f64> = s.iter().map(|&x| (3.0 * x + 1.0).exp()).collect();
        let b = roc_auc(y, &transformed);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// AUC and macro-F1 are always within [0, 1].
    #[test]
    fn metrics_bounded(
        scores in prop::collection::vec(-10.0f64..10.0, 2..50),
        labels in prop::collection::vec(0u8..2, 2..50),
    ) {
        let n = scores.len().min(labels.len());
        let y = &labels[..n];
        let preds: Vec<u8> = scores[..n].iter().map(|&s| u8::from(s >= 0.0)).collect();
        let f = macro_f1(y, &preds);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((0.0..=1.0).contains(&accuracy(y, &preds)));
        let a = roc_auc(y, &scores[..n]);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// AP@k never exceeds 1 and equals 1 when every top slot is relevant.
    #[test]
    fn average_precision_bounds(rel in prop::collection::vec(any::<bool>(), 1..60), k in 1usize..80) {
        let ap = average_precision_at_k(&rel, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        let all_true = vec![true; rel.len()];
        let perfect = average_precision_at_k(&all_true, k);
        prop_assert!((perfect - 1.0).abs() < 1e-12);
    }

    /// Row softmax always yields a probability simplex.
    #[test]
    fn softmax_simplex(vals in prop::collection::vec(-50.0f64..50.0, 6..24)) {
        let cols = 3;
        let rows = vals.len() / cols;
        let m = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec());
        let s = m.softmax_rows();
        for r in 0..rows {
            let sum: f64 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    /// Attention weights form a simplex for arbitrary inputs.
    #[test]
    fn attention_simplex(seed in 0u64..1000, k in 1usize..6, batch in 1usize..4) {
        let mut att = ExogenousAttention::new(4, 4, 8, seed);
        let xt = Matrix::xavier_seeded(batch, 4, seed ^ 1).scaled(5.0);
        let xn: Vec<Matrix> = (0..k)
            .map(|i| Matrix::xavier_seeded(batch, 4, seed ^ (2 + i as u64)).scaled(5.0))
            .collect();
        let _ = att.forward(&xt, &xn);
        let w = att.attention_weights().unwrap();
        for b in 0..batch {
            let sum: f64 = w.row(b).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Weighted BCE is non-negative and finite for any logits.
    #[test]
    fn bce_nonnegative(
        logits in prop::collection::vec(-100.0f64..100.0, 1..30),
        w in 1.0f64..20.0,
    ) {
        let n = logits.len();
        let z = Matrix::from_vec(1, n, logits);
        let t = Matrix::from_fn(1, n, |_, c| (c % 2) as f64);
        let bce = WeightedBce { pos_weight: w };
        let loss = bce.loss(&z, &t);
        prop_assert!(loss.is_finite());
        prop_assert!(loss >= 0.0);
    }

    /// Generated graphs never contain self-loops or duplicate follows.
    #[test]
    fn graph_invariants(n in 10usize..120, m in 1usize..8, comms in 1usize..6, seed in 0u64..500) {
        let g = FollowerGraph::generate(n, m, comms, 0.8, seed);
        prop_assert_eq!(g.n_users(), n);
        for v in 0..n {
            let fs = g.followees(v);
            prop_assert!(!fs.contains(&(v as u32)));
            let mut sorted = fs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), fs.len());
        }
    }

    /// Downsampling always keeps every minority sample and balances.
    #[test]
    fn downsample_balances(labels in prop::collection::vec(0u8..2, 10..200), seed in 0u64..100) {
        prop_assume!(labels.iter().any(|&l| l == 1) && labels.iter().any(|&l| l == 0));
        let x: Vec<Vec<f64>> = (0..labels.len()).map(|i| vec![i as f64]).collect();
        let (_, ys) = ml::sampling::downsample_majority(&x, &labels, 1.0, seed);
        let pos = ys.iter().filter(|&&l| l == 1).count();
        let neg = ys.len() - pos;
        let min_class = labels.iter().filter(|&&l| l == 1).count()
            .min(labels.iter().filter(|&&l| l == 0).count());
        prop_assert_eq!(pos.min(neg), min_class);
        prop_assert!((pos as i64 - neg as i64).abs() <= 1);
    }

    /// Lexicon counting never exceeds the token count and is
    /// case-insensitive.
    #[test]
    fn lexicon_counts_bounded(words in prop::collection::vec("[a-z]{1,6}", 1..40)) {
        let lex = HateLexicon::new(&words[..words.len().min(5)]);
        let tokens: Vec<String> = words.clone();
        let counts = lex.count_vector(&tokens);
        let total: u32 = counts.iter().sum();
        prop_assert!(total as usize <= tokens.len());
        let upper: Vec<String> = tokens.iter().map(|t| t.to_uppercase()).collect();
        prop_assert_eq!(lex.count_vector(&upper), counts);
    }

    /// Tokenizer output is always lowercase and non-empty tokens only.
    #[test]
    fn tokenizer_invariants(input in ".{0,200}") {
        for tok in text::tokenize(&input) {
            prop_assert!(!tok.is_empty());
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }
}
