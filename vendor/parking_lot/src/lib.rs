//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the poison-free `parking_lot` calling convention
//! (`lock()` returns a guard, not a `Result`). A poisoned std lock is
//! recovered rather than propagated — the data is still consistent for the
//! read-mostly caches this workspace guards.

use std::sync::PoisonError;

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RwLock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
