//! Offline stand-in for `crossbeam`: scoped threads with the
//! `crossbeam::scope` calling convention (`scope(|s| ...) -> Result`,
//! spawn closures receiving `&Scope`), implemented over
//! `std::thread::scope`. Worker panics surface as `Err` from [`scope`],
//! matching crossbeam's contract.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scope handle passed to [`scope`] and to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker; the closure receives the scope (crossbeam style) so
    /// it can spawn nested workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Run `f` with a scope; all spawned workers are joined before returning.
/// Returns `Err` with the panic payload if any worker (or `f`) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_fill_disjoint_chunks() {
        let mut out = vec![0usize; 8];
        scope(|s| {
            for (i, chunk) in out.chunks_mut(2).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(out, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_returns_value() {
        let r = scope(|_| 41 + 1).expect("no panic");
        assert_eq!(r, 42);
    }
}
