//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand` API it actually uses: [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], the [`rngs::StdRng`]
//! generator and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation and initialization work, deterministic per seed, and *not*
//! cryptographic (neither is anything this workspace does with it).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`. The blanket
/// [`SampleRange`] impls below are deliberately generic over this trait
/// (mirroring `rand`) so that integer-literal ranges unify with the type
/// demanded at the call site instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw; `inclusive` selects `[lo, hi]` over `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sampling range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty sampling range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_uniform!(f32, f64);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let width = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = widening_mod(rng.next_u64(), width);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `bits % width` via 128-bit multiply-shift (Lemire reduction): unbiased
/// enough for simulation use and avoids the slow `%` on hot paths.
#[inline]
fn widening_mod(bits: u64, width: u128) -> u64 {
    ((bits as u128 * width) >> 64) as u64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Drop-in replacement for `rand::rngs::StdRng`: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (subset: Fisher–Yates `shuffle`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform in-place shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..100_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully ordered");
    }
}
