//! Offline stand-in for `criterion`: a tiny wall-clock benchmark harness
//! with the same API shape the workspace's `benches/` use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`). It runs each
//! routine `sample_size` times and prints min/mean timings — no
//! statistics engine, no plots, but `cargo bench` stays runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; informational only here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/parameter` style id from just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Explicit function + parameter id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing collector handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror real criterion's `--test` flag (`cargo bench -- --test`):
        // a smoke mode that runs every benchmark once to prove it still
        // executes, without burning time on repeated samples. CI uses it
        // to keep the bench suite compiling and running.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: if test_mode { 1 } else { 10 },
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed runs per benchmark (pinned to 1 in `--test` mode).
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Accepted for API compatibility; the stub has no warm-up phase.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        report(name, &b.timings);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Override the group's sample count (pinned to 1 in `--test` mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.criterion.test_mode {
            self.criterion.sample_size = n.max(1);
        }
        self
    }

    /// Close the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn report(name: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name:<50} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        timings.len()
    );
}

/// Mirror of `criterion_group!` (both the simple and `config =` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("unit/count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut seen = Vec::new();
        let mut n = 0;
        c.bench_function("unit/batched", |b| {
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| assert_eq!(x, 7));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
